"""Extension bench — weak scaling and full-machine projection.

Beyond Table II's strong-scaling rows: hold the per-AP workload at the
flagship run's ~2e5 points and grow the machine, and project the
flagship grid onto all 5120 APs (the configuration the paper did not
get an allocation for).  Includes the BSP per-rank simulation as a
second opinion on the closed-form step time.
"""

import pytest

from repro.machine.des import simulate_step, validate_against_closed_form
from repro.perf.feasibility import check_feasibility
from repro.perf.sweep import projected_full_machine, weak_scaling_sweep


def test_weak_scaling(benchmark, calibrated_model):
    preds = benchmark(
        weak_scaling_sweep, points_per_ap=2.0e5,
        processor_counts=(512, 1024, 2048, 4096), model=calibrated_model,
    )
    print("\n[Weak scaling] ~2e5 points per AP:")
    for p in preds:
        print(f"  {p.n_processors:>5} APs: grid {p.nr}x{p.nth}x{p.nph}x2 "
              f"{p.tflops:6.2f} TFlops  {100 * p.efficiency:5.1f} %  "
              f"comm {100 * p.comm_fraction:4.1f} %")
    effs = [p.efficiency for p in preds]
    # near-flat: the hallmark of weak scaling (within a few points)
    assert max(effs) - min(effs) < 0.08
    # per-AP throughput must not collapse
    assert preds[-1].tflops / preds[0].tflops > 6.0


def test_full_machine_projection(benchmark, calibrated_model):
    pred = benchmark(projected_full_machine, calibrated_model)
    feas = check_feasibility(pred, calibrated_model.spec)
    print(f"\n[Projection] flagship grid on all 5120 APs: "
          f"{pred.tflops:.1f} TFlops ({100 * pred.efficiency:.1f} %), "
          f"{feas.nodes_used} nodes, "
          f"{feas.node_memory_used_gb:.1f} GB/node -> "
          f"{'feasible' if feas.feasible else 'infeasible'}")
    assert feas.feasible
    assert pred.tflops > 15.2  # more machine, more sustained flops
    assert pred.efficiency < 0.46 + 0.01  # but lower efficiency than Table II's anchor


def test_bsp_simulation_validates_closed_form(benchmark, calibrated_model):
    """The per-rank BSP simulation (load imbalance, per-rank messages)
    agrees with the analytic model within ten per cent on Table II's
    extremes."""

    def validate():
        return {
            (511, 4096): validate_against_closed_form(
                calibrated_model, 511, 514, 1538, 4096
            ),
            (255, 1200): validate_against_closed_form(
                calibrated_model, 255, 514, 1538, 1200
            ),
        }

    ratios = benchmark(validate)
    print("\n[Validation] BSP-simulated / closed-form step time:")
    for k, v in ratios.items():
        print(f"  nr={k[0]}, {k[1]} APs: {v:.3f}")
    for v in ratios.values():
        assert v == pytest.approx(1.0, abs=0.10)


def test_per_rank_distribution(benchmark, calibrated_model):
    sim = benchmark(simulate_step, calibrated_model, 511, 514, 1538, 4096)
    print(f"\n[Validation] per-rank step distribution: load imbalance "
          f"{sim.load_imbalance:.3f}, mean comm {100 * sim.mean_comm_fraction:.1f} %")
    assert 1.0 <= sim.load_imbalance < 1.3
