"""E-P2 — split-phase overlap: blocking vs overlapped exchange schedule.

The paper's 15.2 TFlops number rests on keeping the vector pipes busy
while halo and overset messages are in flight.  This benchmark measures
our miniature analogue: wall-clock steps/sec of the blocking exchange
schedule (``overlap=False``) against the split-phase schedule
(``overlap=True`` — post receives, wall the interior columns early,
evaluate the whole-patch RHS while messages fly, finish the exchanges,
re-evaluate the four rim slabs) at 2, 4 and 8 ranks on every detected
self-launching backend.

On a loopback/shared-memory world every message arrives in
microseconds, so there is almost nothing to hide and overlap's fixed
cost (the rim re-evaluation, ~30-40% of a whole-patch RHS) can make
it *slower* — the JSON records whatever the machine shows.
To demonstrate the regime the machinery exists for, the socket backend
is additionally measured under ``REPRO_SOCKMPI_LATENCY`` (the router
sleeps before forwarding each rank-to-rank frame, delaying delivery
without blocking the sender — a cross-host RTT stand-in).  There the
blocking schedule eats every injected delay on the critical path while
the overlapped schedule hides it behind the interior evaluation, and
overlapped wins.

Methodology matches ``bench_parallel_scaling.py``: per-rank step-loop
seconds from :class:`~repro.engine.observers.TimerObserver`, world rate
= ``n_steps / max(rank_step_seconds)``, launch/spawn cost excluded.
Per-phase seconds (comm / interior / rim) come from the solver's
``phase_seconds`` bookkeeping and are persisted per point.

Run standalone to (re)generate ``BENCH_comm_overlap.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_comm_overlap.py

``--smoke`` runs a reduced matrix (2 ranks, thread backend + latency
socket, tiny grid) without writing the JSON — the CI smoke.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from bench_parallel_scaling import (
    RANK_LAYOUTS,
    SMOKE_GRID,
    bench_config,
    benchable_backends,
    machine_metadata,
)

from repro.core import RunConfig
from repro.parallel.parallel_solver import run_parallel_dynamo

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_comm_overlap.json"

#: larger than the scaling bench's grid on purpose: the interior
#: evaluation is the overlap window, and it must be long enough to hide
#: a realistic message latency — on a tiny grid the fixed per-region
#: kernel-call overhead (~2 ms x 7 regions) swamps anything hidden
BENCH_GRID = dict(nr=24, nth=48, nph=144)

#: injected per-frame router delay (seconds) for the latency section —
#: a stand-in for a cross-host RTT plus the wire time of the multi-MB
#: packed overset frame.  The win saturates when the delay matches the
#: whole-patch RHS evaluation (the overlap window): beyond that both
#: schedules pay the excess, below it less is hidden.  0.25 s ~ the
#: BENCH_GRID evaluation under two concurrent ranks on one core.
LATENCY_SECONDS = 0.25
LATENCY_ENV = "REPRO_SOCKMPI_LATENCY"


def measure_schedule(config: RunConfig, backend: str, ranks: int,
                     n_steps: int, overlap: bool) -> dict:
    pth, pph = RANK_LAYOUTS[ranks]
    res = run_parallel_dynamo(config, pth, pph, n_steps, backend=backend,
                              timeout=600.0, overlap=overlap)
    slowest = max(res.rank_step_seconds)
    return {
        "overlap_ran": res.overlap,
        "rank_step_seconds": res.rank_step_seconds,
        "rank_comm_seconds": res.rank_comm_seconds,
        "rank_interior_seconds": res.rank_interior_seconds,
        "rank_rim_seconds": res.rank_rim_seconds,
        "slowest_rank_seconds": slowest,
        "steps_per_sec": n_steps / slowest,
    }


def measure_pair(config: RunConfig, backend: str, ranks: int,
                 n_steps: int) -> dict:
    pth, pph = RANK_LAYOUTS[ranks]
    blocking = measure_schedule(config, backend, ranks, n_steps, overlap=False)
    overlapped = measure_schedule(config, backend, ranks, n_steps, overlap=True)
    return {
        "ranks": ranks,
        "layout": [2, pth, pph],
        "blocking": blocking,
        "overlapped": overlapped,
        "overlap_speedup": (
            overlapped["steps_per_sec"] / blocking["steps_per_sec"]
        ),
    }


def measure(n_steps: int = 3, rank_counts: tuple[int, ...] = (2, 4, 8),
            grid: dict[str, int] | None = None,
            latency_steps: int = 3) -> dict:
    grid = dict(BENCH_GRID if grid is None else grid)
    config = bench_config(grid)
    names, skipped = benchable_backends()
    backends: dict[str, list[dict]] = {}
    for backend in names:
        backends[backend] = [
            measure_pair(config, backend, ranks, n_steps)
            for ranks in rank_counts
        ]
    latency: dict = {"note": "socket backend unavailable; latency section skipped"}
    if "socket" in names:
        old = os.environ.get(LATENCY_ENV)
        os.environ[LATENCY_ENV] = str(LATENCY_SECONDS)
        try:
            latency = {
                "injected_frame_latency_seconds": LATENCY_SECONDS,
                "n_steps": latency_steps,
                "curve": [
                    measure_pair(config, "socket", ranks, latency_steps)
                    for ranks in rank_counts
                ],
            }
        finally:
            if old is None:
                del os.environ[LATENCY_ENV]
            else:
                os.environ[LATENCY_ENV] = old
    return {
        "grid": grid,
        "n_steps": n_steps,
        "skipped_backends": skipped,
        "machine": machine_metadata(),
        "methodology": (
            "Each point runs the same dynamo twice: overlap=False "
            "(blocking exchange) and overlap=True (split-phase: post "
            "receives, early wall on interior columns, whole-patch RHS "
            "under the in-flight messages, finish exchanges, rim RHS); "
            "both schedules are bitwise identical in output, so this "
            "is a pure scheduling comparison.  steps/sec = n_steps / max "
            "over ranks of per-rank step-loop seconds; launch cost "
            "excluded.  On loopback/shared-memory transports messages "
            "arrive in microseconds and overlap has little to hide — "
            "speedups near or below 1.0 there are honest.  The "
            "socket_with_latency section injects "
            f"{LATENCY_SECONDS * 1e3:.0f} ms of router forwarding delay "
            "per rank-to-rank frame (sender never blocks) to emulate "
            "the cross-host regime where overlap pays."
        ),
        "backends": backends,
        "socket_with_latency": latency,
    }


def emit_json(path: Path = JSON_PATH, **kwargs) -> dict:
    report = measure(**kwargs)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_summary(rep: dict) -> None:
    meta = rep["machine"]
    print(f"machine: {meta['cpu_count']} cpus "
          f"(affinity {meta['sched_affinity_cpus']}), numpy {meta['numpy']}")
    print(f"grid {rep['grid']}, {rep['n_steps']} steps")
    for backend, curve in rep["backends"].items():
        for pt in curve:
            print(f"  {backend:<8} {pt['ranks']} ranks: "
                  f"blocking {pt['blocking']['steps_per_sec']:.2f} -> "
                  f"overlapped {pt['overlapped']['steps_per_sec']:.2f} "
                  f"steps/s ({pt['overlap_speedup']:.2f}x)")
    lat = rep.get("socket_with_latency", {})
    for pt in lat.get("curve", ()):
        print(f"  socket+{LATENCY_SECONDS * 1e3:.0f}ms {pt['ranks']} ranks: "
              f"blocking {pt['blocking']['steps_per_sec']:.2f} -> "
              f"overlapped {pt['overlapped']['steps_per_sec']:.2f} "
              f"steps/s ({pt['overlap_speedup']:.2f}x)")
    for backend, reason in rep.get("skipped_backends", {}).items():
        print(f"  {backend:<8} skipped — {reason}")


# ---- pytest entry point (the CI overlap smoke) --------------------------------


def test_overlap_beats_blocking_under_latency_smoke(monkeypatch):
    """2-rank socket world with injected frame latency: the overlapped
    schedule must hide the delay the blocking schedule eats — the CI
    smoke for the split-phase machinery end to end.  Runs on
    BENCH_GRID: the whole-patch evaluation must be long enough to hide
    the injected latency, and on the tiny smoke grid it is not.  The
    schedules are compared interleaved (blocking/overlapped per rep)
    and judged on the best of three reps, so a scheduler hiccup in one
    run cannot fail the build — the committed JSON carries the
    representative single-shot numbers."""
    config = bench_config(BENCH_GRID)
    monkeypatch.setenv(LATENCY_ENV, str(LATENCY_SECONDS))
    best = None
    for _ in range(3):
        point = measure_pair(config, "socket", 2, 2)
        assert point["overlapped"]["overlap_ran"]
        assert not point["blocking"]["overlap_ran"]
        if best is None or point["overlap_speedup"] > best["overlap_speedup"]:
            best = point
        if best["overlap_speedup"] > 1.0:
            break
    assert best["overlap_speedup"] > 1.0, best
    print(f"\n[comm overlap smoke] socket x2 +{LATENCY_SECONDS * 1e3:.0f}ms: "
          f"blocking {best['blocking']['steps_per_sec']:.2f} -> overlapped "
          f"{best['overlapped']['steps_per_sec']:.2f} steps/s "
          f"({best['overlap_speedup']:.2f}x)")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        rep = measure(n_steps=2, rank_counts=(2,), grid=SMOKE_GRID,
                      latency_steps=2)
        _print_summary(rep)
    else:
        rep = emit_json()
        _print_summary(rep)
        print(f"-> {JSON_PATH}")
