"""E-T3 — Table III: performances on the Earth Simulator reported at SC.

Recomputes the derived columns (g.p./AP, Flops/g.p.) from the published
primaries and places our modelled yycore row next to the measured one.
"""

import pytest

from repro.perf.comparisons import PAPER_DERIVED, TABLE3_ENTRIES, format_table3


def test_table3_reproduction(benchmark):
    text = benchmark(format_table3)
    print("\n[Table III] SC-paper comparison:\n" + text)
    for entry in TABLE3_ENTRIES:
        paper = PAPER_DERIVED[entry.label]
        assert entry.points_per_ap == pytest.approx(
            paper["points_per_ap"], rel=0.08
        )
        assert entry.flops_per_gridpoint == pytest.approx(
            paper["flops_per_gridpoint"], rel=0.08
        )


def test_table3_model_consistency(benchmark, calibrated_model):
    """The calibrated model's flagship prediction must reproduce this
    paper's own Table III column."""

    def predict():
        return calibrated_model.predict(511, 514, 1538, 4096)

    pred = benchmark(predict)
    yy = TABLE3_ENTRIES[-1]
    assert pred.tflops == pytest.approx(yy.tflops, rel=0.01)
    assert pred.grid_points == pytest.approx(yy.grid_points, rel=0.01)
    assert pred.points_per_ap == pytest.approx(yy.points_per_ap, rel=0.05)
    assert pred.flops_per_gridpoint_rate == pytest.approx(
        yy.flops_per_gridpoint, rel=0.05
    )
    print(
        f"\n[Table III] modelled yycore: {pred.tflops:.1f} TFlops / "
        f"{pred.n_processors // 8} PN, {pred.points_per_ap:.1e} g.p./AP, "
        f"{pred.flops_per_gridpoint_rate / 1e3:.0f}K Flops/g.p."
    )
