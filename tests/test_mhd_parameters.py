import pytest

from repro.mhd.parameters import MHDParameters


class TestValidation:
    def test_defaults_valid(self):
        p = MHDParameters()
        assert p.gamma == pytest.approx(5.0 / 3.0)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError, match="gamma"):
            MHDParameters(gamma=0.9)

    def test_rejects_negative_dissipation(self):
        with pytest.raises(ValueError):
            MHDParameters(mu=-1e-3)

    def test_rejects_inverted_shell(self):
        with pytest.raises(ValueError, match="ro must exceed ri"):
            MHDParameters(ri=1.0, ro=0.35)

    def test_rejects_cold_inner_wall(self):
        with pytest.raises(ValueError, match="inner wall"):
            MHDParameters(t_inner=0.5)


class TestNondimensionalNumbers:
    def test_paper_headline_numbers(self):
        """Section III: Rayleigh 3e6, Ekman 2e-5 for the flagship run."""
        p = MHDParameters.paper_run()
        assert p.rayleigh == pytest.approx(3e6, rel=1e-6)
        assert p.ekman == pytest.approx(2e-5, rel=1e-6)

    def test_dissipation_scaling_story(self):
        """'we set each of them 10 times smaller': Re x10 means Ra x100
        and Ekman /10 relative to the previous (reversal) runs."""
        prev = MHDParameters.previous_run()
        new = prev.with_dissipation_scaled(0.1)
        assert new.rayleigh == pytest.approx(100 * prev.rayleigh)
        assert new.ekman == pytest.approx(prev.ekman / 10)
        assert new.prandtl == pytest.approx(prev.prandtl)
        assert new.magnetic_prandtl == pytest.approx(prev.magnetic_prandtl)

    def test_from_nondimensional_round_trip(self):
        p = MHDParameters.from_nondimensional(
            rayleigh=5e4, ekman=1e-3, prandtl=0.7, magnetic_prandtl=2.0
        )
        assert p.rayleigh == pytest.approx(5e4)
        assert p.ekman == pytest.approx(1e-3)
        assert p.prandtl == pytest.approx(0.7)
        assert p.magnetic_prandtl == pytest.approx(2.0)

    def test_taylor_vs_ekman(self):
        p = MHDParameters.laptop_demo()
        assert p.taylor == pytest.approx((2.0 / p.ekman) ** 2)

    def test_zero_rotation_limits(self):
        p = MHDParameters(omega=0.0)
        assert p.ekman == float("inf")
        assert p.taylor == 0.0

    def test_decay_time_formula(self):
        p = MHDParameters(eta=2e-3)
        import numpy as np

        assert p.magnetic_decay_time == pytest.approx(
            p.shell_depth**2 / (np.pi**2 * 2e-3)
        )

    def test_shell_depth(self):
        assert MHDParameters().shell_depth == pytest.approx(0.65)

    def test_scaling_requires_positive_factor(self):
        with pytest.raises(ValueError):
            MHDParameters().with_dissipation_scaled(0.0)

    def test_from_nondimensional_needs_hot_inner(self):
        with pytest.raises(ValueError, match="t_inner"):
            MHDParameters.from_nondimensional(1e4, 1e-3, t_inner=1.0)
