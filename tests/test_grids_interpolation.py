import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coords.transforms import other_panel_angles
from repro.grids.component import ComponentGrid, Panel
from repro.grids.interpolation import (
    BilinearStencil,
    DonorCoverageError,
    OversetInterpolator,
    build_bilinear_stencil,
)
from repro.grids.yinyang import YinYangGrid


def make_pair(nr=7, nth=14, nph=40):
    yin = ComponentGrid.build(nr, nth, nph, panel=Panel.YIN)
    return yin, yin.twin()


class TestStencilConstruction:
    def test_weights_in_unit_square(self):
        yin, yang = make_pair()
        interp = OversetInterpolator(yin, yang)
        s = interp.stencil
        assert np.all((s.wth >= 0) & (s.wth <= 1))
        assert np.all((s.wph >= 0) & (s.wph <= 1))

    def test_corner_weights_sum_to_one(self):
        yin, yang = make_pair()
        s = OversetInterpolator(yin, yang).stencil
        total = sum(w for _, _, w in s.corner_weights())
        np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_donor_cells_avoid_ring(self):
        """fd_only: no donor corner may be an interpolated ring point."""
        yin, yang = make_pair()
        s = OversetInterpolator(yin, yang).stencil
        for i, j, _ in s.corner_weights():
            assert np.all((i >= 1) & (i <= yin.nth - 2))
            assert np.all((j >= 1) & (j <= yin.nph - 2))

    def test_insufficient_margin_raises(self):
        yin = ComponentGrid.build(7, 14, 40, extra_theta=0, extra_phi=0)
        with pytest.raises(DonorCoverageError, match="extension margins"):
            OversetInterpolator(yin, yin.twin())

    def test_same_panel_rejected(self):
        yin, _ = make_pair()
        with pytest.raises(ValueError, match="opposite panels"):
            OversetInterpolator(yin, yin)

    def test_yin_yang_symmetry(self):
        """Complementarity (eq. 1): both directions share identical
        stencils — the property the paper exploits to reuse all code."""
        g = YinYangGrid(7, 14, 40)
        a, b = g.to_yang.stencil, g.to_yin.stencil
        np.testing.assert_array_equal(a.ith, b.ith)
        np.testing.assert_array_equal(a.iph, b.iph)
        np.testing.assert_allclose(a.wth, b.wth, atol=1e-12)
        np.testing.assert_allclose(a.wph, b.wph, atol=1e-12)


class TestScalarInterpolation:
    def test_exact_on_constants(self):
        yin, yang = make_pair()
        interp = OversetInterpolator(yin, yang)
        field = np.full(yin.shape, 3.25)
        vals = interp.interp_scalar(field)
        np.testing.assert_allclose(vals, 3.25, atol=1e-12)

    def test_exact_on_radial_profiles(self):
        """Interpolation is horizontal: functions of r pass through."""
        yin, yang = make_pair()
        interp = OversetInterpolator(yin, yang)
        field = np.broadcast_to((yin.r**2)[:, None, None], yin.shape).copy()
        vals = interp.interp_scalar(field)
        expected = np.broadcast_to((yin.r**2)[:, None], vals.shape)
        np.testing.assert_allclose(vals, expected, atol=1e-12)

    def test_second_order_convergence(self):
        """Bilinear error on a smooth global field shrinks ~ h^2."""
        errs = []
        for n in (10, 20, 40):
            g = YinYangGrid(5, n, 3 * n)
            f = g.sample_scalar(lambda r, th, ph: np.sin(th) ** 2 * np.cos(2 * ph))
            fy = f[Panel.YIN].copy()
            fe = f[Panel.YANG].copy()
            g.apply_overset_scalar(fy, fe)
            errs.append(
                max(
                    np.max(np.abs(fy - f[Panel.YIN])),
                    np.max(np.abs(fe - f[Panel.YANG])),
                )
            )
        assert errs[0] / errs[1] > 3.0
        assert errs[1] / errs[2] > 3.0

    def test_fill_scalar_only_touches_ring(self):
        yin, yang = make_pair()
        interp = OversetInterpolator(yin, yang)  # receptor = yang
        donor = np.random.default_rng(0).normal(size=yin.shape)
        receptor = np.zeros(yang.shape)
        interp.fill_scalar(donor, receptor)
        mask = np.zeros(yang.shape[1:], dtype=bool)
        mask[interp.ring_ith, interp.ring_iph] = True
        assert np.all(receptor[:, ~mask] == 0.0)
        assert np.any(receptor[:, mask] != 0.0)


class TestVectorInterpolation:
    def test_rigid_rotation_field_is_exact_in_structure(self):
        """A solid-body rotation about the global z axis has panel-frame
        components that both panels must agree on after rotation.
        v = Omega x r; on Yin: (0, 0, Omega r sin(theta))."""
        g = YinYangGrid(7, 20, 58)
        omega = 1.7

        def yin_components(grid):
            shape = grid.shape
            vph = omega * grid.r3 * np.sin(grid.theta3)
            return (
                np.zeros(shape),
                np.zeros(shape),
                np.broadcast_to(vph, shape).copy(),
            )

        def yang_components(grid):
            # global v in Cartesian: Omega x r with Omega = Omega zhat_global
            th, ph = np.meshgrid(grid.theta, grid.phi, indexing="ij")
            th_g, ph_g = other_panel_angles(th, ph)
            from repro.coords.spherical import cart_vector_to_sph, sph_to_cart
            from repro.coords.transforms import yinyang_vector_map

            x, y, z = sph_to_cart(1.0, th_g, ph_g)
            vx, vy, vz = -omega * y, omega * x, np.zeros_like(x)
            # to Yang frame, then to Yang spherical components
            vx, vy, vz = yinyang_vector_map(vx, vy, vz)
            vr, vth, vph = cart_vector_to_sph(vx, vy, vz, th, ph)
            r3 = grid.r[:, None, None]
            return (
                r3 * vr[None, :, :],
                r3 * vth[None, :, :],
                r3 * vph[None, :, :],
            )

        vy_ = yin_components(g.yin)
        ve_ = yang_components(g.yang)
        vy2 = tuple(c.copy() for c in vy_)
        ve2 = tuple(c.copy() for c in ve_)
        g.apply_overset_vector(vy2, ve2)
        for a, b in zip(vy2, vy_):
            # linear-in-position field: bilinear interpolation errs at h^2
            assert np.max(np.abs(a - b)) < 5e-3
        for a, b in zip(ve2, ve_):
            assert np.max(np.abs(a - b)) < 5e-3

    def test_vector_magnitude_preserved_for_constants(self):
        """Interpolating a constant-magnitude tangent field preserves the
        magnitude up to interpolation error (rotation is orthogonal)."""
        g = YinYangGrid(5, 16, 46)
        shape = g.yin.shape
        comps_yin = (np.zeros(shape), np.ones(shape), np.zeros(shape))
        comps_yang = (np.zeros(shape), np.ones(shape), np.zeros(shape))
        wr, wth, wph = g.to_yang.interp_vector(*comps_yin)
        mag = np.sqrt(wr**2 + wth**2 + wph**2)
        np.testing.assert_allclose(mag, 1.0, atol=1e-10)
        del comps_yang


class TestBuildStencilEdgeCases:
    def test_snapping_keeps_interpolation_property(self):
        g = ComponentGrid.build(5, 14, 40)
        # a point exactly on an admissible-cell boundary
        theta = np.array([g.theta[1]])
        phi = np.array([g.phi[1]])
        s = build_bilinear_stencil(g, theta, phi, fd_only=True)
        assert s.ith[0] == 1 and s.iph[0] == 1
        assert s.wth[0] == pytest.approx(0.0, abs=1e-12)

    def test_out_of_domain_raises(self):
        g = ComponentGrid.build(5, 14, 40)
        with pytest.raises(DonorCoverageError):
            build_bilinear_stencil(g, np.array([0.01]), np.array([0.0]))

    def test_apply_shapes(self):
        s = BilinearStencil(
            ith=np.array([1, 2]), iph=np.array([1, 1]),
            wth=np.array([0.5, 0.25]), wph=np.array([0.0, 1.0]),
        )
        field = np.arange(60.0).reshape(3, 4, 5)
        out = s.apply(field)
        assert out.shape == (3, 2)


@given(st.integers(10, 24), st.integers(1, 3))
def test_any_reasonable_resolution_has_donors(nth, extra_phi):
    """Default margins admit donor cells across a range of resolutions."""
    nph = 3 * nth
    g = YinYangGrid(5, nth, nph, extra_phi=max(2, extra_phi))
    assert g.to_yang.n_ring == g.yang.n_ring
