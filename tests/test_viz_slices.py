import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid
from repro.viz.slices import (
    equatorial_slice,
    merge_equatorial,
    meridional_slice,
    sample_panel,
    sample_sphere,
)


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(7, 18, 52)


@pytest.fixture(scope="module")
def smooth_fields(grid):
    return grid.sample_scalar(
        lambda r, th, ph: r * np.cos(th) + 0.5 * np.sin(th) * np.cos(ph)
    )


def exact(r, th, ph):
    return r * np.cos(th) + 0.5 * np.sin(th) * np.cos(ph)


class TestSamplePanel:
    def test_exact_at_nodes(self, grid, smooth_fields):
        g = grid.yin
        th = g.theta[3] * np.ones(4)
        ph = g.phi[[2, 5, 9, 20]]
        vals = sample_panel(g, smooth_fields[Panel.YIN], th, ph)
        expected = exact(g.r[:, None], th[None, :], ph[None, :])
        np.testing.assert_allclose(vals, expected, atol=1e-12)

    def test_raises_outside(self, grid, smooth_fields):
        with pytest.raises(ValueError):
            sample_panel(grid.yin, smooth_fields[Panel.YIN], np.array([0.01]), np.array([0.0]))


class TestSampleSphere:
    def test_accuracy_everywhere(self, grid, smooth_fields):
        rng = np.random.default_rng(0)
        th = np.arccos(rng.uniform(-1, 1, 200))
        ph = rng.uniform(-np.pi, np.pi, 200)
        vals = sample_sphere(grid, smooth_fields, th, ph)
        expected = exact(grid.yin.r[:, None], th[None, :], ph[None, :])
        assert np.abs(vals - expected).max() < 5e-3  # bilinear h^2

    def test_poles_come_from_yang(self, grid, smooth_fields):
        vals = sample_sphere(grid, smooth_fields, np.array([0.01]), np.array([0.3]))
        expected = exact(grid.yin.r, 0.01, 0.3)
        np.testing.assert_allclose(vals[:, 0], expected, atol=5e-3)


class TestEquatorial:
    def test_shape_and_phi_range(self, grid, smooth_fields):
        phi, vals = equatorial_slice(grid, smooth_fields, nphi=120)
        assert vals.shape == (grid.yin.nr, 120)
        assert phi[0] == pytest.approx(-np.pi)

    def test_values(self, grid, smooth_fields):
        phi, vals = equatorial_slice(grid, smooth_fields, nphi=90)
        expected = exact(grid.yin.r[:, None], np.pi / 2, phi[None, :])
        assert np.abs(vals - expected).max() < 5e-3

    def test_merge_helper(self, grid, smooth_fields):
        vals = merge_equatorial(grid, smooth_fields, nphi=45)
        assert vals.shape == (grid.yin.nr, 45)

    def test_no_seam_at_panel_border(self, grid, smooth_fields):
        """'There is no indication of the internal border': adjacent
        samples straddling the Yin/Yang switch differ by O(h^2), not
        O(field range)."""
        phi, vals = equatorial_slice(grid, smooth_fields, nphi=720)
        jumps = np.abs(np.diff(vals, axis=1)).max()
        assert jumps < 0.02


class TestMeridional:
    def test_pole_to_pole(self, grid, smooth_fields):
        th, vals = meridional_slice(grid, smooth_fields, phi0=0.7, ntheta=90)
        assert vals.shape == (grid.yin.nr, 90)
        expected = exact(grid.yin.r[:, None], th[None, :], 0.7)
        assert np.abs(vals - expected).max() < 6e-3
