"""Compiled stencil backend vs the NumPy reference, element for element.

The C kernels were written to mirror NumPy's per-operation rounding
(left-associated accumulation, ``-ffp-contract=off``), so equality here
is *bitwise*, not approximate.  Hypothesis drives random shapes, axes
and strides — including non-contiguous views, which the wrappers must
copy through without changing results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import backend as kernel_backend
from repro.fd import stencils as np_stencils

pytestmark = pytest.mark.skipif(
    not kernel_backend.probe("c").available,
    reason="C kernel backend unavailable (no toolchain and no cached build)",
)


def _ck():
    from repro.fd.ckernels import stencils as ck_stencils

    return ck_stencils


OPS = ("diff", "diff2", "diff_raw", "diff2_raw")


@st.composite
def _arrays(draw):
    ndim = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.integers(min_value=3, max_value=8)) for _ in range(ndim))
    axis = draw(st.integers(min_value=0, max_value=ndim - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    f = rng.standard_normal(shape)
    return f, axis


@settings(max_examples=60, deadline=None)
@given(case=_arrays(), op=st.sampled_from(OPS))
def test_stencils_bitwise_equal(case, op):
    f, axis = case
    ck = _ck()
    if op.endswith("_raw"):
        expected = getattr(np_stencils, op)(f, axis)
        got = getattr(ck, op)(f, axis)
    else:
        expected = getattr(np_stencils, op)(f, 0.1, axis)
        got = getattr(ck, op)(f, 0.1, axis)
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=30, deadline=None)
@given(case=_arrays(), op=st.sampled_from(OPS))
def test_stencils_noncontiguous_input(case, op):
    """Strided (non-C-contiguous) views go through a copy, same results."""
    f, axis = case
    big = np.zeros(tuple(2 * n for n in f.shape))
    view = big[tuple(slice(0, 2 * n, 2) for n in f.shape)]
    view[...] = f
    assert not view.flags["C_CONTIGUOUS"]
    ck = _ck()
    if op.endswith("_raw"):
        expected = getattr(np_stencils, op)(f, axis)
        got = getattr(ck, op)(view, axis)
    else:
        expected = getattr(np_stencils, op)(f, 0.1, axis)
        got = getattr(ck, op)(view, 0.1, axis)
    np.testing.assert_array_equal(got, expected)


def test_out_param_and_flat_last_axis():
    rng = np.random.default_rng(7)
    f = rng.standard_normal((6, 5, 9))
    ck = _ck()
    for axis in range(3):
        out = np.empty_like(f)
        res = ck.diff(f, 0.25, axis, out=out)
        assert res is out
        np.testing.assert_array_equal(out, np_stencils.diff(f, 0.25, axis))
        out2 = np.empty_like(f)
        res2 = ck.diff2_raw(f, axis, out=out2)
        assert res2 is out2
        np.testing.assert_array_equal(out2, np_stencils.diff2_raw(f, axis))


def test_out_aliasing_rejected():
    f = np.zeros((4, 4))
    ck = _ck()
    with pytest.raises(ValueError, match="alias"):
        ck.diff(f, 0.1, 0, out=f)


def test_short_axis_rejected():
    f = np.zeros((2, 5))
    ck = _ck()
    with pytest.raises(ValueError):
        ck.diff(f, 0.1, 0)


def test_non_float64_delegates_to_numpy():
    f = np.arange(24, dtype=np.float32).reshape(4, 6)
    ck = _ck()
    got = ck.diff(f, 0.5, 1)
    np.testing.assert_array_equal(got, np_stencils.diff(f, 0.5, 1))


def test_counters_track_compiled_sweeps():
    f = np.random.default_rng(1).standard_normal((5, 6, 7))
    ck = _ck()
    np_stencils.reset_stencil_counts()
    ck.diff(f, 0.1, 0)
    ck.diff_raw(f, 1)
    ck.diff2(f, 0.1, 2)
    ck.diff2_raw(f, 0)
    counts = np_stencils.stencil_counts()
    assert counts == {"diff": 2, "diff2": 2}


def test_elementwise_iadd_axpy_bitwise():
    rng = np.random.default_rng(11)
    x = rng.standard_normal((4, 5, 6))
    y = rng.standard_normal((4, 5, 6))
    a = 0.37
    ck = _ck()
    x_c = x.copy()
    assert ck.iadd_scaled_into(x_c, y, a)
    np.testing.assert_array_equal(x_c, x + a * y)
    out = np.empty_like(x)
    assert ck.axpy_into(x, y, a, out)
    np.testing.assert_array_equal(out, x + a * y)
    # Non-contiguous operands are refused (caller falls back to NumPy).
    assert not ck.iadd_scaled_into(x_c.T, y.T, a)


@pytest.fixture
def yin_case():
    from repro.grids.yinyang import YinYangGrid
    from repro.mhd.initial import conduction_state
    from repro.mhd.parameters import MHDParameters
    from repro.mhd.state import FIELD_NAMES, MHDState

    params = MHDParameters.laptop_demo()
    grid = YinYangGrid(9, 12, 16, ri=params.ri, ro=params.ro)
    patch = grid.yin
    base = conduction_state(patch, params)
    rng = np.random.default_rng(42)
    state = MHDState(
        **{
            n: getattr(base, n) + 0.05 * rng.standard_normal(base.rho.shape)
            for n in FIELD_NAMES
        }
    )
    omega = (0.0, 0.0, params.omega)
    return patch, params, omega, state


def test_rhs_c_bitwise_matches_fused(yin_case, monkeypatch):
    from repro.mhd.equations import PanelEquations
    from repro.mhd.state import FIELD_NAMES

    patch, params, omega, state = yin_case
    fused = PanelEquations(patch, params, omega, fused=True)
    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "c")
    ceq = PanelEquations(patch, params, omega, fused=True)
    assert ceq.kernel_backend == "c"
    want = fused.rhs(state)
    got = ceq.rhs(state)
    assert ceq.kernel_backend == "c"  # no silent fallback happened
    for name in FIELD_NAMES:
        np.testing.assert_array_equal(getattr(got, name), getattr(want, name))


def test_rhs_c_stencil_counts_match_fused(yin_case, monkeypatch):
    from repro.mhd.equations import PanelEquations

    patch, params, omega, state = yin_case
    fused = PanelEquations(patch, params, omega, fused=True)
    np_stencils.reset_stencil_counts()
    fused.rhs(state)
    fused_counts = np_stencils.stencil_counts()

    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "c")
    ceq = PanelEquations(patch, params, omega, fused=True)
    ceq.rhs(state)  # build the context outside the counted window
    np_stencils.reset_stencil_counts()
    ceq.rhs(state)
    c_counts = np_stencils.stencil_counts()

    assert c_counts == fused_counts == {"diff": 44, "diff2": 3}


def test_serial_dynamo_c_matches_numpy(monkeypatch):
    """10 steps of the serial dynamo: C backend vs NumPy to <= 1e-13 rel."""
    from repro.core.config import RunConfig
    from repro.core.yycore import YinYangDynamo
    from repro.mhd.state import FIELD_NAMES

    def run(backend_env):
        if backend_env is None:
            monkeypatch.delenv(kernel_backend.KERNELS_ENV, raising=False)
        else:
            monkeypatch.setenv(kernel_backend.KERNELS_ENV, backend_env)
        cfg = RunConfig(nr=7, nth=10, nph=30, dt=1e-3,
                        amp_temperature=1e-2, seed=123)
        dyn = YinYangDynamo(cfg)
        for _ in range(10):
            dyn.step()
        return dyn

    ref = run(None)
    cdyn = run("c")
    for panel, eq in cdyn.equations.items():
        assert eq.kernel_backend == "c", panel
    for panel, state in cdyn.state.items():
        ref_state = ref.state[panel]
        for name in FIELD_NAMES:
            a = getattr(state, name)
            b = getattr(ref_state, name)
            scale = max(float(np.max(np.abs(b))), 1.0)
            assert np.max(np.abs(a - b)) <= 1e-13 * scale, (panel, name)
