import numpy as np
import pytest

from repro.core.guard import HealthReport, SolverDivergence, assert_healthy, check_state
from repro.grids.component import ComponentGrid
from repro.mhd.initial import conduction_state
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def setup():
    params = MHDParameters.laptop_demo()
    grid = ComponentGrid.build(7, 12, 36)
    return grid, params


class TestCheckState:
    def test_rest_state_healthy(self, setup):
        grid, params = setup
        rep = check_state(grid, conduction_state(grid, params), params)
        assert rep.physical
        assert rep.max_speed == 0.0
        assert rep.grid_reynolds == 0.0
        assert not rep.marginal

    def test_locates_fast_spot(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.fr[3, 5, 7] = 10.0 * s.rho[3, 5, 7]
        rep = check_state(grid, s, params)
        assert rep.worst_index == (3, 5, 7)
        assert rep.max_speed == pytest.approx(10.0)

    def test_nan_reported(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.fth[1, 1, 1] = np.nan
        rep = check_state(grid, s, params)
        assert not rep.physical
        assert rep.worst_index == (1, 1, 1)

    def test_grid_reynolds_scales_with_speed(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.fph[:] = 0.1 * s.rho
        r1 = check_state(grid, s, params).grid_reynolds
        s.fph[:] = 0.2 * s.rho
        r2 = check_state(grid, s, params).grid_reynolds
        assert r2 == pytest.approx(2 * r1)


class TestAssertHealthy:
    def test_passes_quietly(self, setup):
        grid, params = setup
        rep = assert_healthy(grid, conduction_state(grid, params), params)
        assert isinstance(rep, HealthReport)

    def test_raises_on_negative_pressure(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.p[2, 2, 2] = -1.0
        with pytest.raises(SolverDivergence, match="min p"):
            assert_healthy(grid, s, params, step=42)

    def test_raises_on_excess_grid_reynolds(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.fr[:] = 100.0 * s.rho
        with pytest.raises(SolverDivergence, match="grid Reynolds"):
            assert_healthy(grid, s, params, max_grid_reynolds=5.0)

    def test_exception_carries_report(self, setup):
        grid, params = setup
        s = conduction_state(grid, params)
        s.rho[0, 0, 0] = -1.0
        try:
            assert_healthy(grid, s, params)
        except SolverDivergence as exc:
            assert exc.report.min_density == pytest.approx(-1.0)
        else:
            pytest.fail("expected SolverDivergence")
