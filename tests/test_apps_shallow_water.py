import numpy as np
import pytest

from repro.apps.shallow_water import (
    ShallowWaterSolver,
    williamson2_drift,
    williamson2_state,
)
from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(4, 14, 42)


@pytest.fixture(scope="module")
def solver(grid):
    return ShallowWaterSolver(grid)


class TestSetup:
    def test_earth_defaults(self, solver):
        assert solver.a == pytest.approx(6.37122e6)
        assert solver.omega == pytest.approx(7.292e-5)

    def test_coriolis_is_global(self, solver, grid):
        """f depends on the *global* colatitude on both panels: its range
        is [-2 Omega, 2 Omega] and Yang covers the poles where |f| peaks."""
        f_yin = solver._geom[Panel.YIN]["coriolis"]
        f_yang = solver._geom[Panel.YANG]["coriolis"]
        assert np.abs(f_yang).max() > np.abs(f_yin).max()
        assert np.abs(f_yang).max() <= 2 * solver.omega * 1.0000001

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            ShallowWaterSolver(grid, gravity=0.0)


class TestWilliamson2:
    def test_state_is_positive_depth(self, solver):
        state = williamson2_state(solver)
        for h, _, _ in state.values():
            assert h.min() > 0.0

    def test_geostrophic_balance_residual_small(self, solver):
        """The initial RHS is truncation-level relative to the dynamic
        scales (the state is an exact continuum steady solution)."""
        state = williamson2_state(solver)
        solver.enforce(state)
        k = solver.rhs(state)
        # height tendency scale vs gravity-wave advection scale
        dh = max(float(np.abs(f[0][:, 2:-2, 2:-2]).max()) for f in k.values())
        h_scale = max(float(f[0].max()) for f in state.values())
        u_scale = 40.0
        assert dh < 0.05 * h_scale * u_scale / solver.a * 10

    def test_drift_small_and_converging(self):
        d1 = williamson2_drift(YinYangGrid(4, 14, 42), hours=1.0)
        d2 = williamson2_drift(YinYangGrid(4, 26, 78), hours=1.0)
        assert d1 < 1e-2
        assert d1 / d2 > 2.5  # ~second order

    def test_velocity_field_consistent_across_panels(self, solver):
        """TC2's flow is global solid-body rotation; after the overset
        exchange the ring values must match the analytic field."""
        state = williamson2_state(solver)
        before = {p: tuple(np.copy(c) for c in f) for p, f in state.items()}
        solver.enforce(state)
        h_scale = max(float(f[0].max()) for f in before.values())
        for p in state:
            # height: relative bilinear error; velocities: m/s scale
            assert np.abs(state[p][0] - before[p][0]).max() < 5e-3 * h_scale
            for a, b in zip(state[p][1:], before[p][1:]):
                assert np.abs(a - b).max() < 0.5


class TestDynamics:
    def test_gravity_wave_radiates_from_bump(self, solver):
        """A height bump launches gravity waves: the initial tendency is
        nonzero and the depth stays positive over a short run."""
        state = williamson2_state(solver)
        # add a localised bump on the Yin panel's equator
        h = state[Panel.YIN][0]
        nth, nph = h.shape[1:]
        h[:, nth // 2, nph // 2] *= 1.01
        solver.enforce(state)
        state = solver.run(state, 600.0)  # ten minutes
        for hh, _, _ in state.values():
            assert hh.min() > 0.0

    def test_stable_dt_scales_with_resolution(self, grid):
        s1 = ShallowWaterSolver(YinYangGrid(4, 14, 42))
        s2 = ShallowWaterSolver(YinYangGrid(4, 28, 84))
        st1 = williamson2_state(s1)
        st2 = williamson2_state(s2)
        assert s2.stable_dt(st2) < s1.stable_dt(st1)

    def test_rest_state_stays_at_rest(self, grid):
        """Uniform depth, no flow: an exact discrete equilibrium."""
        solver = ShallowWaterSolver(grid)
        state = {}
        for g in grid.panels:
            shape = (1, g.nth, g.nph)
            state[g.panel] = (
                np.full(shape, 1000.0), np.zeros(shape), np.zeros(shape)
            )
        solver.enforce(state)
        state = solver.run(state, 1800.0)
        for h, uth, uph in state.values():
            np.testing.assert_allclose(h, 1000.0, rtol=1e-12)
            assert np.abs(uth).max() < 1e-10
            assert np.abs(uph).max() < 1e-10
