"""Seeded schedule-perturbation fuzzing (``REPRO_SCHED_FUZZ``).

The fuzzer shim makes the transports produce *different* legal
delivery schedules; the solver's guarantee is that every one of them
yields bitwise-identical floats.  Covered here: the env-var switch,
the mailbox hold/flush machinery (per-stream FIFO must survive
arbitrary hold decisions), and the headline property — the overlapped
step pinned bitwise against an unfuzzed baseline across 20 seeds on
the thread backend, plus a fuzzed socket loopback world and a fuzzed
run under the full sanitizer.

Distinct from ``test_parallel_fuzz.py`` (hypothesis stress tests of
message *contents*): this file perturbs message *schedules*.
"""

import contextlib
import threading

import numpy as np
import pytest

from repro.core import RunConfig
from repro.mhd.parameters import MHDParameters
from repro.parallel.fuzz import FUZZ_DELAY_ENV, FUZZ_ENV, ScheduleFuzzer
from repro.parallel.parallel_solver import run_parallel_dynamo
from repro.parallel.simmpi import _MailBox, _Message
from repro.parallel.sockmpi import SockMPI, worker_join


# --------------------------------------------------------------------------
# env switch
# --------------------------------------------------------------------------


class TestFromEnv:
    @pytest.mark.parametrize("raw", ["", "0", "off", "no", "false"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv(FUZZ_ENV, raw)
        assert ScheduleFuzzer.from_env() is None

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv(FUZZ_ENV, raising=False)
        assert ScheduleFuzzer.from_env() is None

    def test_integer_seed(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "1234")
        fuzz = ScheduleFuzzer.from_env()
        assert fuzz is not None and fuzz.seed == 1234

    def test_garbage_seed_warns_and_stays_off(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="not an integer seed"):
            assert ScheduleFuzzer.from_env() is None

    def test_delay_env(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "7")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "0.01")
        assert ScheduleFuzzer.from_env().max_delay == 0.01

    def test_garbage_delay_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "7")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "soon")
        with pytest.warns(RuntimeWarning, match="not a number"):
            fuzz = ScheduleFuzzer.from_env()
        assert fuzz.max_delay == 0.002

    def test_negative_delay_clamped(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "7")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "-1")
        assert ScheduleFuzzer.from_env().max_delay == 0.0

    def test_same_seed_same_decision_stream(self):
        a, b = ScheduleFuzzer(99), ScheduleFuzzer(99)
        assert [a.delay() for _ in range(32)] == [b.delay() for _ in range(32)]
        assert [a.hold() for _ in range(32)] == [b.hold() for _ in range(32)]

    def test_delay_bounded(self):
        fuzz = ScheduleFuzzer(3, max_delay=0.004)
        assert all(0.0 <= fuzz.delay() <= 0.004 for _ in range(100))


# --------------------------------------------------------------------------
# mailbox hold/flush: reorders across streams, never within one
# --------------------------------------------------------------------------


class _ScriptedFuzz(ScheduleFuzzer):
    """Deterministic hold decisions; no sleeping."""

    def __init__(self, holds):
        super().__init__(seed=0, max_delay=0.0)
        self._holds = list(holds)

    def hold(self):
        return self._holds.pop(0) if self._holds else False


def _msg(source, tag, payload):
    return _Message(source=source, tag=tag, payload=payload)


class TestMailBoxHold:
    def test_same_stream_fifo_survives_holding(self):
        # first message held; the same-stream follower must queue
        # behind it, not jump into the visible list
        box = _MailBox(fuzz=_ScriptedFuzz([True, True]))
        box.put(_msg(0, 5, "first"))
        box.put(_msg(0, 5, "second"))
        assert box.get(0, 5, timeout=1.0).payload == "first"
        assert box.get(0, 5, timeout=1.0).payload == "second"

    def test_follower_queues_behind_held_even_without_hold_decision(self):
        # the scripted second decision is False, but the stream already
        # has a held message: the follower is force-held behind it
        box = _MailBox(fuzz=_ScriptedFuzz([True, False]))
        box.put(_msg(0, 5, "first"))
        box.put(_msg(0, 5, "second"))
        assert box.get(0, 5, timeout=1.0).payload == "first"
        assert box.get(0, 5, timeout=1.0).payload == "second"

    def test_cross_stream_overtake_is_possible(self):
        # stream (0,5) held; stream (1,5) delivered straight through —
        # a later arrival from a different stream becomes visible first
        box = _MailBox(fuzz=_ScriptedFuzz([True, False]))
        box.put(_msg(0, 5, "early-held"))
        box.put(_msg(1, 5, "late-direct"))
        from repro.parallel.simmpi import ANY_SOURCE
        first = box.get(ANY_SOURCE, 5, timeout=1.0)
        assert first.payload == "late-direct"
        assert box.get(ANY_SOURCE, 5, timeout=1.0).payload == "early-held"

    def test_get_flushes_held_so_no_artificial_deadlock(self):
        box = _MailBox(fuzz=_ScriptedFuzz([True]))
        box.put(_msg(2, 9, "only"))
        # without the flush this would time out: the only copy is held
        assert box.get(2, 9, timeout=1.0).payload == "only"


# --------------------------------------------------------------------------
# the property: fuzzed schedules are bitwise-identical
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def config():
    return RunConfig(nr=5, nth=10, nph=30, params=MHDParameters.laptop_demo(),
                     dt=1e-3, amp_temperature=1e-2)


@pytest.fixture(scope="module")
def baseline(config):
    """Unfuzzed overlapped run on the thread backend."""
    return run_parallel_dynamo(config, 1, 2, 2, overlap=True)


def _assert_bitwise_equal(result, reference, label):
    for panel, state in result.states.items():
        for (name, a), (_, b) in zip(state.named_arrays(),
                                     reference.states[panel].named_arrays()):
            np.testing.assert_array_equal(
                a, b, err_msg=f"{label}: {panel} {name}")


class TestOverlapBitwiseUnderFuzz:
    @pytest.mark.parametrize("seed", range(1, 21))
    def test_thread_overlap_bitwise_across_seeds(self, monkeypatch, config,
                                                 baseline, seed):
        monkeypatch.setenv(FUZZ_ENV, str(seed))
        monkeypatch.setenv(FUZZ_DELAY_ENV, "0.0005")
        fuzzed = run_parallel_dynamo(config, 1, 2, 2, overlap=True)
        assert fuzzed.overlap
        _assert_bitwise_equal(fuzzed, baseline, f"seed {seed}")

    def test_blocking_schedule_also_bitwise(self, monkeypatch, config,
                                            baseline):
        monkeypatch.setenv(FUZZ_ENV, "31337")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "0.0005")
        fuzzed = run_parallel_dynamo(config, 1, 2, 2, overlap=False)
        _assert_bitwise_equal(fuzzed, baseline, "blocking seed 31337")

    def test_fuzzed_run_under_sanitizer_is_clean(self, monkeypatch, config,
                                                 baseline):
        # jitter + hold must not trip the protocol recorder, the HB
        # buffer windows, or the poisoned-release checks
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv(FUZZ_ENV, "42")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "0.0005")
        fuzzed = run_parallel_dynamo(config, 1, 2, 2, overlap=True)
        _assert_bitwise_equal(fuzzed, baseline, "sanitized seed 42")


# --------------------------------------------------------------------------
# socket backend: router-side jitter
# --------------------------------------------------------------------------


def _ring_prog(comm):
    comm.Send(np.array([float(comm.rank)]), dest=(comm.rank + 1) % comm.size)
    got = comm.Recv(source=(comm.rank - 1) % comm.size)
    total = comm.allreduce(float(comm.rank), op=lambda a, b: a + b)
    return float(got[0]), total


def _quiet_worker(addr):
    with contextlib.suppress(BaseException):
        worker_join(addr, timeout=60.0)


class TestSocketFuzz:
    def test_fuzzed_loopback_world(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV, "17")
        monkeypatch.setenv(FUZZ_DELAY_ENV, "0.0005")
        addr_box, announced = {}, threading.Event()

        def announce(addr):
            addr_box["addr"] = addr
            announced.set()

        launcher = SockMPI(spawn=False, announce=announce)
        out = {}

        def coordinate():
            try:
                out["results"] = launcher.run(3, _ring_prog, timeout=30.0)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                out["error"] = exc

        coord = threading.Thread(target=coordinate, daemon=True)
        coord.start()
        assert announced.wait(30.0)
        workers = [
            threading.Thread(target=_quiet_worker, args=(addr_box["addr"],),
                             daemon=True)
            for _ in range(3)
        ]
        for w in workers:
            w.start()
        coord.join(timeout=60.0)
        assert not coord.is_alive()
        if "error" in out:
            raise out["error"]
        assert out["results"] == [(2.0, 3.0), (0.0, 3.0), (1.0, 3.0)]
