import numpy as np
import pytest

from repro.mhd.boundary import MagneticBC, WallBC
from repro.mhd.parameters import MHDParameters
from repro.mhd.state import MHDState


@pytest.fixture()
def state():
    rng = np.random.default_rng(0)
    s = MHDState(*(rng.normal(size=(6, 5, 7)) for _ in range(8)))
    s.rho = np.abs(s.rho) + 1.0
    s.p = np.abs(s.p) + 1.0
    return s


@pytest.fixture()
def params():
    return MHDParameters.laptop_demo()


class TestNoSlip:
    def test_mass_flux_zero_on_walls(self, state, params):
        WallBC(params).apply(state)
        for c in state.f:
            assert np.all(c[0] == 0.0)
            assert np.all(c[-1] == 0.0)

    def test_interior_untouched(self, state, params):
        before = {n: a.copy() for n, a in state.named_arrays()}
        WallBC(params).apply(state)
        for n, a in state.named_arrays():
            np.testing.assert_array_equal(a[1:-1], before[n][1:-1])


class TestThermalWalls:
    def test_wall_temperatures_fixed(self, state, params):
        WallBC(params).apply(state)
        temp = state.temperature()
        np.testing.assert_allclose(temp[0], params.t_inner)
        np.testing.assert_allclose(temp[-1], 1.0)

    def test_density_zero_gradient(self, state, params):
        WallBC(params).apply(state)
        np.testing.assert_array_equal(state.rho[0], state.rho[1])
        np.testing.assert_array_equal(state.rho[-1], state.rho[-2])


class TestMagneticWalls:
    def test_perfect_conductor_pins_tangential_a(self, state, params):
        WallBC(params, magnetic=MagneticBC.PERFECT_CONDUCTOR).apply(state)
        for c in (state.ath, state.aph):
            assert np.all(c[0] == 0.0)
            assert np.all(c[-1] == 0.0)
        np.testing.assert_array_equal(state.ar[0], state.ar[1])
        np.testing.assert_array_equal(state.ar[-1], state.ar[-2])

    def test_pseudo_vacuum_zeroes_radial_a(self, state, params):
        WallBC(params, magnetic=MagneticBC.PSEUDO_VACUUM).apply(state)
        assert np.all(state.ar[0] == 0.0)
        assert np.all(state.ar[-1] == 0.0)
        np.testing.assert_array_equal(state.ath[0], state.ath[1])
        np.testing.assert_array_equal(state.aph[-1], state.aph[-2])


class TestIdempotence:
    @pytest.mark.parametrize("bc", list(MagneticBC))
    def test_applying_twice_is_identity(self, state, params, bc):
        wall = WallBC(params, magnetic=bc)
        wall.apply(state)
        snap = {n: a.copy() for n, a in state.named_arrays()}
        wall.apply(state)
        for n, a in state.named_arrays():
            np.testing.assert_array_equal(a, snap[n])
