"""Tests of the unified time-integration engine (repro.engine)."""

import numpy as np
import pytest

from repro.core import LatLonDynamo, RunConfig, SolverDivergence, YinYangDynamo
from repro.engine import (
    CadenceController,
    CheckpointObserver,
    HealthGuard,
    HistoryRecorder,
    Integrator,
    StepObserver,
    TimeTargetController,
    TimerObserver,
)
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters


class DecayDriver:
    """Toy driver: y' = -y by forward Euler, with a countable estimator."""

    def __init__(self, y0: float = 1.0):
        self.y = y0
        self.time = 0.0
        self.step_count = 0
        self.estimates = 0

    def estimate_dt(self) -> float:
        self.estimates += 1
        return 0.05

    def advance(self, dt: float) -> float:
        self.y *= 1.0 - dt
        self.time += dt
        self.step_count += 1
        return dt


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


class TestControllers:
    def test_fixed_dt_never_estimates(self):
        d = DecayDriver()
        result = Integrator(d, CadenceController(5, dt=0.1)).run()
        assert result.steps == 5
        assert d.estimates == 0
        assert result.dt_history == [0.1] * 5
        assert d.time == pytest.approx(0.5)

    def test_adaptive_recompute_cadence(self):
        """estimate_dt is called before step 0 and every recompute_every
        steps — the historical per-solver cadence."""
        d = DecayDriver()
        Integrator(d, CadenceController(5, dt=None, recompute_every=2)).run()
        assert d.estimates == 3  # k = 0, 2, 4

    def test_zero_steps(self):
        d = DecayDriver()
        result = Integrator(d, CadenceController(0, dt=0.1)).run()
        assert result.steps == 0 and d.step_count == 0
        assert d.estimates == 0  # no estimate for an empty run

    def test_time_target_lands_exactly(self):
        d = DecayDriver()
        result = Integrator(d, TimeTargetController(1.0, 0.3)).run()
        assert d.time == pytest.approx(1.0, abs=1e-15)
        assert result.steps == 4  # 0.3 + 0.3 + 0.3 + 0.1
        assert result.dt_history[-1] == pytest.approx(0.1)

    def test_time_target_eps_suppresses_sliver_step(self):
        d = DecayDriver()
        d.time = 1.0 - 1e-13
        result = Integrator(d, TimeTargetController(1.0, 0.3, eps=1e-12)).run()
        assert result.steps == 0

    def test_from_config_policies(self, params):
        fixed = CadenceController.from_config(
            RunConfig(params=params, dt=2e-3), 4
        )
        assert fixed.dt == 2e-3
        adaptive = CadenceController.from_config(
            RunConfig(params=params, dt=None, dt_recompute_every=7), 4
        )
        assert adaptive.dt is None and adaptive.recompute_every == 7


class TestObserverDispatch:
    def test_hooks_fire_in_order(self):
        calls = []

        class Probe(StepObserver):
            def on_start(self, driver):
                calls.append("start")

            def after_step(self, event):
                calls.append(("step", event.step, event.dt))

            def on_finish(self, driver):
                calls.append("finish")

        d = DecayDriver()
        Integrator(d, CadenceController(2, dt=0.1), [Probe()]).run()
        assert calls == ["start", ("step", 1, 0.1), ("step", 2, 0.1), "finish"]

    def test_finishers_run_when_an_observer_raises(self):
        finished = []

        class Boom(StepObserver):
            def after_step(self, event):
                raise RuntimeError("boom")

        class Finisher(StepObserver):
            def on_finish(self, driver):
                finished.append(True)

        d = DecayDriver()
        with pytest.raises(RuntimeError, match="boom"):
            Integrator(d, CadenceController(3, dt=0.1), [Boom(), Finisher()]).run()
        assert finished == [True]
        assert d.step_count == 1  # stopped at the first step

    def test_capability_checked_up_front(self):
        d = DecayDriver()  # no record() / check_health()
        with pytest.raises(TypeError, match="HistoryRecorder"):
            Integrator(d, CadenceController(1, dt=0.1), [HistoryRecorder()]).run()
        with pytest.raises(TypeError, match="HealthGuard"):
            Integrator(d, CadenceController(1, dt=0.1), [HealthGuard()]).run()


class TestHistoryDt:
    def test_adaptive_run_records_real_dt(self, params):
        """Satellite fix: adaptive runs used to log dt = NaN."""
        dyn = YinYangDynamo(
            RunConfig(nr=7, nth=12, nph=36, params=params, dt=None)
        )
        dyn.run(3, record_every=1)
        assert len(dyn.history) == 3
        for rec in dyn.history:
            assert np.isfinite(rec.dt) and rec.dt > 0.0

    def test_fixed_run_records_config_dt(self, params):
        dyn = LatLonDynamo(
            RunConfig(nr=7, nth=12, nph=24, params=params, dt=5e-4)
        )
        dyn.run(2, record_every=1)
        assert [r.dt for r in dyn.history] == [5e-4, 5e-4]

    def test_manual_record_uses_last_step_dt(self, params):
        dyn = YinYangDynamo(
            RunConfig(nr=7, nth=12, nph=36, params=params, dt=None)
        )
        used = dyn.step()
        rec = dyn.record()
        assert rec.dt == used


class TestHealthGuard:
    def test_underresolved_run_raises_with_report(self, params):
        """A deliberately unstable run (dt far beyond the CFL limit)
        raises SolverDivergence through Integrator.run() with a
        populated HealthReport instead of producing NaN energies."""
        dyn = YinYangDynamo(
            RunConfig(nr=7, nth=12, nph=36, params=params, dt=0.5,
                      amp_temperature=0.2)
        )
        guard = HealthGuard()
        with np.errstate(all="ignore"), pytest.raises(SolverDivergence) as info:
            dyn.run(30, record_every=0, observers=[guard])
        report = info.value.report
        assert report is not None
        assert (not report.physical) or report.grid_reynolds > 20.0
        assert len(report.worst_index) == 3
        # the guard fired before the loop consumed all 30 steps
        assert dyn.step_count < 30

    def test_healthy_run_passes_and_keeps_last_report(self, params):
        dyn = LatLonDynamo(
            RunConfig(nr=7, nth=12, nph=24, params=params, dt=5e-4)
        )
        guard = HealthGuard(every=2)
        dyn.run(4, record_every=0, observers=[guard])
        assert guard.checks == 2
        assert guard.last_report is not None and guard.last_report.physical

    def test_guard_cadence(self, params):
        dyn = LatLonDynamo(
            RunConfig(nr=7, nth=12, nph=24, params=params, dt=5e-4)
        )
        guard = HealthGuard(every=3)
        dyn.run(7, record_every=0, observers=[guard])
        assert guard.checks == 2  # steps 3 and 6


class TestCheckpointEquivalence:
    """Run N continuously vs run k, checkpoint, restore, run N-k:
    bitwise-identical fields for fixed dt, on both serial drivers."""

    N, K = 6, 2

    def test_yinyang_split_run_bitwise(self, params, tmp_path):
        cfg = RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3,
                        amp_temperature=1e-2)
        direct = YinYangDynamo(cfg)
        direct.run(self.N, record_every=0)

        first = YinYangDynamo(cfg)
        saver = CheckpointObserver(tmp_path, self.K, basename="yy")
        first.run(self.K, record_every=0, observers=[saver])
        assert saver.paths, "no checkpoint written"

        second = YinYangDynamo(cfg)
        restorer = CheckpointObserver(tmp_path, 10**6, restart=saver.paths[-1])
        second.run(self.N - self.K, record_every=0, observers=[restorer])
        assert second.step_count == self.N
        from repro.checkers.fingerprint import assert_bitwise_equal

        assert_bitwise_equal(second.state, direct.state,
                             context="restarted vs direct run")

    def test_latlon_split_run_bitwise(self, params, tmp_path):
        cfg = RunConfig(nr=7, nth=12, nph=24, params=params, dt=5e-4,
                        amp_temperature=1e-2)
        direct = LatLonDynamo(cfg)
        direct.run(self.N, record_every=0)

        first = LatLonDynamo(cfg)
        first.run(self.K, record_every=0)
        path = first.save_checkpoint(tmp_path / "ll")

        second = LatLonDynamo(cfg)
        second.restore_checkpoint(path)
        second.run(self.N - self.K, record_every=0)
        assert second.time == direct.time
        from repro.checkers.fingerprint import assert_bitwise_equal

        assert_bitwise_equal(second.state, direct.state,
                             context="restarted vs direct lat-lon run")

    def test_periodic_saves_and_final(self, params, tmp_path):
        cfg = RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3)
        dyn = YinYangDynamo(cfg)
        obs = CheckpointObserver(tmp_path, 2, save_final=True)
        dyn.run(5, record_every=0, observers=[obs])
        steps = sorted(int(p.stem.split("_")[-1]) for p in obs.paths)
        assert steps == [2, 4, 5]
        for p in obs.paths:
            assert p.exists()


class TestTimerObserver:
    def test_feeds_driver_registry(self, params):
        dyn = YinYangDynamo(
            RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3)
        )
        dyn.run(3, record_every=0, observers=[TimerObserver()])
        step_timer = dyn.timers.timer("step")
        assert step_timer.count == 3
        assert step_timer.total > 0.0

    def test_comm_trace_deltas(self):
        class FakeTrace:
            n_messages = 4
            total_bytes = 1024

        trace = FakeTrace()
        obs = TimerObserver(comm_trace=trace)
        d = DecayDriver()
        Integrator(d, CadenceController(2, dt=0.1), [obs]).run()
        trace.n_messages = 10
        trace.total_bytes = 5000
        obs.on_finish(d)
        assert obs.comm_messages == 6
        assert obs.comm_bytes == 5000 - 1024


class TestAppsOnEngine:
    def test_heat_run_dispatches_observers(self):
        from repro.apps.heat import HeatSolver, radial_mode
        from repro.grids.yinyang import YinYangGrid

        counted = []

        class Counter(StepObserver):
            def after_step(self, event):
                counted.append(event.dt)

        g = YinYangGrid(9, 12, 36)
        s = HeatSolver(g, kappa=5e-3)
        temp = radial_mode(g, 1)
        s.run(temp, 10 * s.stable_dt(0.2), observers=[Counter()])
        assert len(counted) == s.step_count
        assert s.time == pytest.approx(10 * s.stable_dt(0.2))

    def test_transport_engine_matches_legacy_loop(self):
        """The engine reproduces the hand-rolled t_end loop bitwise."""
        from repro.apps.transport import TransportSolver, gaussian_blob, rotation_velocity
        from repro.grids.yinyang import YinYangGrid

        g = YinYangGrid(5, 14, 42)
        vel = rotation_velocity(g, (0, 0, 1), omega=1.0)

        def legacy(solver, c, t_end, cfl=0.3):
            dt = solver.stable_dt(cfl)
            while solver.time < t_end - 1e-14:
                c = solver.step(c, min(dt, t_end - solver.time))
            return c

        c0 = gaussian_blob(g, (np.pi / 2, 0.0), 0.4)
        a_solver = TransportSolver(g, vel)
        a_solver.enforce(c0)
        t_end = 20 * a_solver.stable_dt(0.3)
        got = a_solver.run({p: f.copy() for p, f in c0.items()}, t_end)
        b_solver = TransportSolver(g, vel)
        want = legacy(b_solver, {p: f.copy() for p, f in c0.items()}, t_end)
        assert a_solver.time == b_solver.time
        for p in got:
            np.testing.assert_array_equal(got[p], want[p])
