import numpy as np

from repro.fd.operators import SphericalOperators
from repro.grids.component import ComponentGrid


def grid_ops(n=17):
    g = ComponentGrid.build(n, n, 3 * n)
    return g, SphericalOperators(g)


def full(g, a):
    return np.broadcast_to(a, g.shape).copy()


class TestGradient:
    def test_radial_function(self):
        g, ops = grid_ops()
        s = full(g, g.r3**2)
        gr = ops.grad(s)
        np.testing.assert_allclose(gr[0], full(g, 2 * g.r3), atol=1e-10)
        np.testing.assert_allclose(gr[1], 0.0, atol=1e-10)
        np.testing.assert_allclose(gr[2], 0.0, atol=1e-10)

    def test_smooth_function_converges(self):
        errs = []
        for n in (11, 21):
            g, ops = grid_ops(n)
            r, th, ph = g.r3, g.theta3, g.phi3
            s = full(g, r**2 * np.sin(th) ** 2 * np.cos(ph))
            gr = ops.grad(s)
            exact = (
                2 * r * np.sin(th) ** 2 * np.cos(ph),
                2 * r * np.sin(th) * np.cos(th) * np.cos(ph),
                -r * np.sin(th) * np.sin(ph),
            )
            errs.append(
                max(np.abs(gr[i] - full(g, exact[i])).max() for i in range(3))
            )
        assert errs[0] / errs[1] > 3.0


class TestDivergence:
    def test_radial_field_exact_form(self):
        """div(r rhat) = 3 — exact for the linear radial profile."""
        g, ops = grid_ops(11)
        v = (full(g, g.r3 * np.ones_like(g.theta3)), g.zeros(), g.zeros())
        np.testing.assert_allclose(ops.div(v), 3.0, atol=1e-9)

    def test_solenoidal_rotation_field(self):
        """div(Omega x r) = 0: solid-body rotation is divergence-free."""
        g, ops = grid_ops(13)
        vph = full(g, g.r3 * np.sin(g.theta3))
        v = (g.zeros(), g.zeros(), vph)
        np.testing.assert_allclose(ops.div(v), 0.0, atol=1e-9)


class TestCurl:
    def test_rotation_field_curl_is_2z(self):
        """curl(Omega x r) = 2 Omega: for Omega = zhat, the curl's
        spherical components are (2 cos(theta), -2 sin(theta), 0)."""
        g, ops = grid_ops(13)
        vph = full(g, g.r3 * np.sin(g.theta3))
        c = ops.curl((g.zeros(), g.zeros(), vph))
        tol = 2.0 * g.dtheta**2  # trig fields carry O(h^2) truncation
        np.testing.assert_allclose(c[0], full(g, 2 * np.cos(g.theta3) * np.ones_like(g.r3)), atol=tol)
        np.testing.assert_allclose(c[1], full(g, -2 * np.sin(g.theta3) * np.ones_like(g.r3)), atol=tol)
        np.testing.assert_allclose(c[2], 0.0, atol=tol)

    def test_curl_of_gradient_converges_to_zero(self):
        errs = []
        for n in (11, 21):
            g, ops = grid_ops(n)
            s = full(g, g.r3**2 * np.cos(g.theta3) * np.sin(g.phi3))
            cg = ops.curl(ops.grad(s))
            sl = (slice(2, -2),) * 3
            errs.append(max(np.abs(c[sl]).max() for c in cg))
        assert errs[0] / errs[1] > 3.0

    def test_div_of_curl_converges_to_zero(self):
        errs = []
        for n in (11, 21):
            g, ops = grid_ops(n)
            r, th, ph = g.r3, g.theta3, g.phi3
            v = tuple(
                full(g, a)
                for a in (r * np.sin(th) * np.cos(ph), r**2 * np.cos(th), r * np.sin(ph))
            )
            dc = ops.div(ops.curl(v))
            sl = (slice(2, -2),) * 3
            errs.append(np.abs(dc[sl]).max())
        assert errs[0] / errs[1] > 3.0


class TestLaplacian:
    def test_harmonic_function(self):
        """lap(1/r) = 0 away from the origin."""
        g, ops = grid_ops(15)
        s = full(g, 1.0 / g.r3 * np.ones_like(g.theta3))
        lap = ops.laplacian(s)
        sl = (slice(1, -1),) * 3
        assert np.abs(lap[sl]).max() < 2e-2  # 1/r is stiff near ri

    def test_quadratic(self):
        """lap(r^2) = 6 exactly for this discretisation."""
        g, ops = grid_ops(11)
        s = full(g, g.r3**2 * np.ones_like(g.theta3))
        np.testing.assert_allclose(ops.laplacian(s)[1:-1], 6.0, atol=1e-8)

    def test_consistency_with_identity(self):
        """Scalar laplacian == div(grad) up to the different stencil
        composition's truncation error (both 2nd order)."""
        g, ops = grid_ops(21)
        s = full(g, g.r3 * np.sin(g.theta3) * np.cos(g.phi3))
        a = ops.laplacian(s)
        b = ops.div(ops.grad(s))
        sl = (slice(2, -2),) * 3
        assert np.abs(a[sl] - b[sl]).max() < 0.05 * max(1.0, np.abs(a[sl]).max())


class TestAdvection:
    def test_advect_scalar_uniform_gradient(self):
        """v . grad(z) with v = zhat equals 1 (z = r cos(theta))."""
        g, ops = grid_ops(13)
        ct, st = np.cos(g.theta3), np.sin(g.theta3)
        v = (full(g, ct * np.ones_like(g.r3)), full(g, -st * np.ones_like(g.r3)), g.zeros())
        z = full(g, g.r3 * ct)
        np.testing.assert_allclose(ops.advect_scalar(v, z), 1.0, atol=2.0 * g.dtheta**2)

    def test_advect_vector_rigid_rotation_centripetal(self):
        """(v.grad)v for solid rotation about z is the centripetal
        acceleration -Omega^2 s shat (s = cylindrical radius)."""
        g, ops = grid_ops(17)
        st, ct = np.sin(g.theta3), np.cos(g.theta3)
        vph = full(g, g.r3 * st)
        v = (g.zeros(), g.zeros(), vph)
        a = ops.advect_vector(v, v)
        exact_r = -g.r3 * st**2  # shat . rhat = sin(theta)
        exact_th = -g.r3 * st * ct
        tol = 2.0 * g.dtheta**2
        np.testing.assert_allclose(a[0], full(g, exact_r), atol=tol)
        np.testing.assert_allclose(a[1], full(g, exact_th), atol=tol)
        np.testing.assert_allclose(a[2], 0.0, atol=tol)

    def test_div_tensor_identity(self):
        """div(v f) = (div v) f + (v.grad) f by construction."""
        g, ops = grid_ops(9)
        rng = np.random.default_rng(1)
        v = tuple(rng.normal(size=g.shape) for _ in range(3))
        f = tuple(rng.normal(size=g.shape) for _ in range(3))
        lhs = ops.div_tensor_vf(v, f)
        dv = ops.div(v)
        adv = ops.advect_vector(v, f)
        for i in range(3):
            np.testing.assert_allclose(lhs[i], dv * f[i] + adv[i], atol=1e-12)


class TestVectorLaplacian:
    def test_identity_definition(self):
        g, ops = grid_ops(9)
        rng = np.random.default_rng(2)
        v = tuple(rng.normal(size=g.shape) for _ in range(3))
        lap = ops.vector_laplacian(v)
        gd = ops.grad_div(v)
        cc = ops.curl_curl(v)
        for i in range(3):
            np.testing.assert_allclose(lap[i], gd[i] - cc[i], atol=1e-12)

    def test_rotation_field_has_known_laplacian(self):
        """lap(Omega x r) = 0 for solid-body rotation."""
        g, ops = grid_ops(17)
        vph = full(g, g.r3 * np.sin(g.theta3))
        lap = ops.vector_laplacian((g.zeros(), g.zeros(), vph))
        sl = (slice(2, -2),) * 3
        for c in lap:
            assert np.abs(c[sl]).max() < 5.0 * g.dtheta**2 / g.ri


class TestAlgebra:
    def test_cross_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = tuple(rng.normal(size=(4, 4, 4)) for _ in range(3))
        b = tuple(rng.normal(size=(4, 4, 4)) for _ in range(3))
        c = SphericalOperators.cross(a, b)
        stacked = np.cross(np.stack(a, -1), np.stack(b, -1))
        for i in range(3):
            np.testing.assert_allclose(c[i], stacked[..., i], atol=1e-14)

    def test_dot_and_norm2(self):
        rng = np.random.default_rng(4)
        a = tuple(rng.normal(size=(3, 3, 3)) for _ in range(3))
        np.testing.assert_allclose(
            SphericalOperators.dot(a, a), SphericalOperators.norm2(a), atol=1e-14
        )

    def test_cross_antisymmetry(self):
        rng = np.random.default_rng(5)
        a = tuple(rng.normal(size=(3, 3, 3)) for _ in range(3))
        b = tuple(rng.normal(size=(3, 3, 3)) for _ in range(3))
        ab = SphericalOperators.cross(a, b)
        ba = SphericalOperators.cross(b, a)
        for i in range(3):
            np.testing.assert_allclose(ab[i], -ba[i], atol=1e-14)
