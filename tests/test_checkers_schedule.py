"""The schedule model checker and the REP010-REP012 concurrency rules.

Three layers: the protocol IR checker on hand-built Op programs (known
deadlocks must produce a cycle witness, known-safe protocols a proof),
the AST lifter end-to-end on source fixtures, and the real dynamo step
protocol lifted from the solver's own plan objects — which must be
provably deadlock-free for every layout under both send semantics.
"""

import ast

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.schedule import (
    SCHEDULE_RULES,
    Op,
    check_deadlock_free,
    dynamo_step_programs,
    lift_function,
    schedule_lint_paths,
    schedule_lint_source,
)

#: every lint fixture must import repro.parallel — the schedule rules
#: (like the core rules) only apply inside the parallel scope
_SCOPE = "from repro.parallel.simmpi import SimMPI\n"


def codes(source, **kw):
    return [v.rule for v in schedule_lint_source(_SCOPE + source, **kw)]


def lint(source, **kw):
    return schedule_lint_source(_SCOPE + source, **kw)


# --------------------------------------------------------------------------
# IR-level model checker
# --------------------------------------------------------------------------

class TestCheckerIR:
    def test_cross_recv_deadlock(self):
        programs = [
            [Op("recv", peer=1, tag=0), Op("send", peer=1, tag=0)],
            [Op("recv", peer=0, tag=0), Op("send", peer=0, tag=0)],
        ]
        for sem in ("buffered", "rendezvous"):
            v = check_deadlock_free(programs, semantics=sem)
            assert not v.ok and v.witness is not None, sem
            assert v.witness.cycle is not None
            assert set(v.witness.cycle) == {0, 1}

    def test_matched_pairs_safe(self):
        programs = [
            [Op("send", peer=1, tag=0), Op("recv", peer=1, tag=1)],
            [Op("recv", peer=0, tag=0), Op("send", peer=0, tag=1)],
        ]
        for sem in ("buffered", "rendezvous"):
            v = check_deadlock_free(programs, semantics=sem)
            assert v.ok and v.witness is None, sem

    def test_head_to_head_sends_rendezvous_only(self):
        # both ranks Send first: fine with buffering, deadlock in
        # rendezvous (the MPI-unsafe pattern the strict mode exists for)
        programs = [
            [Op("send", peer=1, tag=0), Op("recv", peer=1, tag=0)],
            [Op("send", peer=0, tag=0), Op("recv", peer=0, tag=0)],
        ]
        assert check_deadlock_free(programs, semantics="buffered").ok
        v = check_deadlock_free(programs, semantics="rendezvous")
        assert v.witness is not None and v.witness.cycle is not None

    def test_irecv_breaks_the_ring(self):
        # post the receive first and the cyclic exchange is safe even
        # in rendezvous mode — exactly the halo exchange's shape
        def rank(r, n):
            return [
                Op("irecv", peer=(r - 1) % n, tag=0, handle=0),
                Op("send", peer=(r + 1) % n, tag=0),
                Op("wait", peer=(r - 1) % n, tag=0, handle=0),
            ]

        programs = [rank(r, 3) for r in range(3)]
        for sem in ("buffered", "rendezvous"):
            assert check_deadlock_free(programs, semantics=sem).ok, sem

    def test_collective_order_mismatch(self):
        # rank 0 waits for a message rank 1 only sends after the
        # barrier: a cross collective/p2p cycle
        programs = [
            [Op("recv", peer=1, tag=0),
             Op("coll", comm="world", seq=0, members=(0, 1))],
            [Op("coll", comm="world", seq=0, members=(0, 1)),
             Op("send", peer=0, tag=0)],
        ]
        v = check_deadlock_free(programs)
        assert v.witness is not None
        assert v.witness.cycle is not None

    def test_any_source_matches(self):
        programs = [
            [Op("recv", peer=None, tag=None), Op("recv", peer=None, tag=None)],
            [Op("send", peer=0, tag=1)],
            [Op("send", peer=0, tag=2)],
        ]
        for sem in ("buffered", "rendezvous"):
            assert check_deadlock_free(programs, semantics=sem).ok, sem

    def test_state_cap_is_undecided_not_a_verdict(self):
        programs = [
            [Op("send", peer=1, tag=t) for t in range(8)]
            + [Op("recv", peer=1, tag=8)],
            [Op("recv", peer=0, tag=None) for _ in range(8)]
            + [Op("send", peer=0, tag=8)],
        ]
        v = check_deadlock_free(programs, max_states=3)
        assert v.exhausted and not v.ok and v.witness is None

    def test_trace_is_minimal_for_immediate_deadlock(self):
        programs = [
            [Op("recv", peer=1, tag=0)],
            [Op("recv", peer=0, tag=0)],
        ]
        v = check_deadlock_free(programs)
        assert v.witness is not None
        assert v.witness.trace == []  # blocked before any event fires
        assert "cycle: " in v.witness.describe()


# --------------------------------------------------------------------------
# the AST lifter, end to end
# --------------------------------------------------------------------------

RING_DEADLOCK = """
def exchange(comm):
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    got = comm.Recv(source=left, tag=0)
    comm.Send(got, dest=right, tag=0)
"""

SAFE_IRECV_RING = """
def exchange(comm):
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    req = comm.Irecv(source=left, tag=0)
    comm.Send(b"x", dest=right, tag=0)
    return req.wait()
"""

RANK_BRANCHED_SAFE = """
def swap(comm):
    if comm.rank == 0:
        comm.Send(b"a", dest=1, tag=1)
        return comm.Recv(source=1, tag=2)
    if comm.rank == 1:
        got = comm.Recv(source=0, tag=1)
        comm.Send(got, dest=0, tag=2)
        return got
"""


class TestRep010:
    def test_ring_deadlock_flagged_with_cycle(self):
        vs = lint(RING_DEADLOCK, rules=["REP010"])
        assert [v.rule for v in vs] == ["REP010"]
        assert "provably deadlocks" in vs[0].message
        assert "cycle:" in vs[0].message

    def test_safe_irecv_ring_clean(self):
        assert codes(SAFE_IRECV_RING, rules=["REP010"]) == []

    def test_rank_branched_protocol_clean(self):
        assert codes(RANK_BRANCHED_SAFE, rules=["REP010"]) == []

    def test_lifter_programs_match_hand_ir(self):
        fn = ast.parse(RING_DEADLOCK).body[0]
        programs = lift_function(fn, 2)
        kinds = [[op.kind for op in p] for p in programs]
        assert kinds == [["recv", "send"], ["recv", "send"]]

    def test_too_dynamic_is_never_reported(self):
        # unliftable (data-dependent peer): must stay silent, not guess
        src = """
def maybe(comm, peers):
    comm.Recv(source=peers[comm.rank], tag=0)
"""
        assert codes(src, rules=["REP010"]) == []

    def test_noqa_suppresses(self):
        src = RING_DEADLOCK.replace(
            "def exchange(comm):", "def exchange(comm):  # repro: noqa-REP010"
        )
        assert codes(src, rules=["REP010"]) == []

    def test_outside_parallel_scope_is_ignored(self):
        vs = schedule_lint_source(RING_DEADLOCK, rules=["REP010"])
        assert vs == []


class TestRep011:
    BAD = """
def overlapped(comm, buf, out):
    h = comm.Isend(buf, dest=1, tag=0)
    buf[0] = 0.0
    h.wait()
"""

    CLEAN = """
def overlapped(comm, buf, out):
    h = comm.Isend(buf, dest=1, tag=0)
    out[0] = 0.0
    h.wait()
    buf[0] = 0.0
"""

    WAITALL_LIST = """
def overlapped(comm, buf):
    reqs = [comm.Isend(buf, dest=1, tag=0)]
    buf[:] = 0.0
    comm.Waitall(reqs)
"""

    def test_write_between_post_and_wait(self):
        vs = lint(self.BAD, rules=["REP011"])
        assert [v.rule for v in vs] == ["REP011"]

    def test_write_after_wait_clean(self):
        assert codes(self.CLEAN, rules=["REP011"]) == []

    def test_waitall_list_form(self):
        assert codes(self.WAITALL_LIST, rules=["REP011"]) == ["REP011"]


class TestRep012:
    DISCARDED = """
def step(halo, state):
    halo.exchange_begin(state)
"""

    UNREAD = """
def step(halo, state):
    h = halo.exchange_state_begin(state)
    return state
"""

    PAIRED = """
def step(halo, state):
    h = halo.exchange_begin(state)
    halo.exchange_finish(h)
"""

    def test_discarded_begin(self):
        vs = lint(self.DISCARDED, rules=["REP012"])
        assert [v.rule for v in vs] == ["REP012"]
        assert "discarded" in vs[0].message

    def test_unread_handle(self):
        vs = lint(self.UNREAD, rules=["REP012"])
        assert [v.rule for v in vs] == ["REP012"]
        assert "never read" in vs[0].message

    def test_paired_clean(self):
        assert codes(self.PAIRED, rules=["REP012"]) == []


# --------------------------------------------------------------------------
# hypothesis: random programs with known verdicts
# --------------------------------------------------------------------------

def _safe_program_source(pairs):
    """A 2-rank protocol built from a global order of matched pairs:
    for each (direction, tag), the sender Sends then the receiver
    Recvs, in the same global sequence on both ranks — deadlock-free
    by construction (each pair completes before the next starts)."""
    if not pairs:
        return "def prog(comm):\n    pass\n"
    lines0, lines1 = [], []
    for i, direction in enumerate(pairs):
        if direction == 0:
            lines0.append(f"comm.Send(b'x', dest=1, tag={i})")
            lines1.append(f"comm.Recv(source=0, tag={i})")
        else:
            lines1.append(f"comm.Send(b'x', dest=0, tag={i})")
            lines0.append(f"comm.Recv(source=1, tag={i})")
    return (
        "def prog(comm):\n"
        "    if comm.rank == 0:\n"
        + "\n".join("        " + ln for ln in lines0) + "\n"
        "    if comm.rank == 1:\n"
        + "\n".join("        " + ln for ln in lines1) + "\n"
    )


def _deadlocking_program_source(prefix):
    """Same construction, then both ranks Recv before the matching
    Send — a guaranteed cross-receive cycle at tag 0."""
    safe = _safe_program_source(prefix)
    return safe.replace(
        "def prog(comm):\n",
        "def prog(comm):\n"
        "    peer = 1 - comm.rank\n"
        "    comm.Recv(source=peer, tag=999)\n"
        "    comm.Send(b'x', dest=peer, tag=999)\n",
    )


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), max_size=6))
def test_known_safe_programs_pass(pairs):
    src = _SCOPE + _safe_program_source(pairs)
    vs = schedule_lint_source(src, rules=["REP010"])
    assert vs == [], src


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), max_size=4))
def test_known_deadlocking_programs_flagged(prefix):
    src = _SCOPE + _deadlocking_program_source(prefix)
    vs = schedule_lint_source(src, rules=["REP010"])
    assert [v.rule for v in vs] == ["REP010"], src


# --------------------------------------------------------------------------
# the real step protocol
# --------------------------------------------------------------------------

LAYOUTS = [(1, 1), (1, 2), (2, 2)]


class TestDynamoStepProtocol:
    @pytest.mark.parametrize("pth,pph", LAYOUTS)
    @pytest.mark.parametrize("overlap", [False, True])
    def test_step_protocol_deadlock_free(self, pth, pph, overlap):
        programs = dynamo_step_programs(14, 42, pth, pph, overlap=overlap)
        assert len(programs) == 2 * pth * pph
        for sem in ("buffered", "rendezvous"):
            v = check_deadlock_free(programs, semantics=sem)
            assert v.ok, (
                f"{pth}x{pph} overlap={overlap} {sem}: "
                + (v.witness.describe() if v.witness else "state cap hit")
            )

    def test_witness_when_protocol_broken(self):
        # sabotage: drop one rank's overset sends — its partner's
        # receives can never complete and the checker must say so
        programs = dynamo_step_programs(14, 42, 1, 2)
        programs[0] = [op for op in programs[0] if op.kind != "send"]
        v = check_deadlock_free(programs, semantics="buffered")
        assert v.witness is not None

    def test_source_tree_is_clean(self):
        violations, n_files = schedule_lint_paths(["src"])
        assert n_files > 50
        assert violations == []


def test_rule_catalogue_named():
    assert set(SCHEDULE_RULES) == {"REP010", "REP011", "REP012"}
