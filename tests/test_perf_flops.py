import pytest

from repro.perf.flops import (
    DEFAULT_STEP_FLOPS_PER_POINT,
    measure_rhs_flops_per_point,
    measure_step_flops_per_point,
)


@pytest.fixture(scope="module")
def step_work():
    return measure_step_flops_per_point()


class TestMeasurement:
    def test_rhs_work_in_plausible_range(self):
        """The RHS evaluates ~60 stencil derivatives plus metric algebra:
        a few hundred flops per point, well below 1e4."""
        w = measure_rhs_flops_per_point()
        assert 100 < w.rhs_flops_per_point < 5000

    def test_step_is_about_four_rhs(self, step_work):
        """RK4 = 4 RHS evaluations + state combinations."""
        ratio = step_work.step_flops_per_point / step_work.rhs_flops_per_point
        assert 3.8 < ratio < 5.0

    def test_rk4_overhead_positive(self, step_work):
        assert step_work.rk4_overhead > 0.0

    def test_resolution_independent_per_point(self):
        """W is per-point: two grid sizes agree within edge effects."""
        a = measure_step_flops_per_point(10, 12, 36)
        b = measure_step_flops_per_point(14, 16, 48)
        assert a.step_flops_per_point == pytest.approx(
            b.step_flops_per_point, rel=0.05
        )

    def test_default_constant_within_factor_two(self, step_work):
        """The recorded fallback must track the live measurement."""
        assert (
            0.05
            < step_work.step_flops_per_point / DEFAULT_STEP_FLOPS_PER_POINT
            < 2.0
        )

    def test_breakdown_dominated_by_basic_arithmetic(self, step_work):
        total = sum(step_work.by_ufunc.values())
        basic = sum(
            step_work.by_ufunc.get(k, 0)
            for k in ("add", "subtract", "multiply", "divide", "true_divide")
        )
        assert basic / total > 0.9
