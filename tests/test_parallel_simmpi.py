import numpy as np
import pytest

from repro.parallel.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockTimeout,
    SimMPI,
    SimMPIError,
)


class TestLaunch:
    def test_single_rank(self):
        assert SimMPI.run(1, lambda c: c.rank) == [0]

    def test_results_in_rank_order(self):
        assert SimMPI.run(5, lambda c: c.rank * 10) == [0, 10, 20, 30, 40]

    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("boom on rank 2")
            return comm.rank

        with pytest.raises(RuntimeError, match="boom"):
            SimMPI.run(3, prog)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            SimMPI.run(0, lambda c: None)

    def test_args_forwarded(self):
        assert SimMPI.run(2, lambda c, x, y=0: x + y + c.rank, 5, y=1) == [6, 7]


class TestPointToPoint:
    def test_numpy_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10.0), dest=1, tag=3)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0, tag=3)
            return buf.sum()

        assert SimMPI.run(2, prog)[1] == pytest.approx(45.0)

    def test_object_payloads(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send({"k": [1, 2]}, dest=1)
                return None
            return comm.Recv(source=0)

        assert SimMPI.run(2, prog)[1] == {"k": [1, 2]}

    def test_buffered_semantics_sender_can_mutate(self):
        """Send copies eagerly: mutations after Send don't leak."""

        def prog(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.Send(data, dest=1)
                data[:] = -1.0
                comm.barrier()
                return None
            comm.barrier()
            return float(comm.Recv(source=0).sum())

        assert SimMPI.run(2, prog)[1] == 4.0

    def test_tag_matching_out_of_order(self):
        """A receive for tag 2 must skip an earlier tag-1 message."""

        def prog(comm):
            if comm.rank == 0:
                comm.Send("first", dest=1, tag=1)
                comm.Send("second", dest=1, tag=2)
                return None
            second = comm.Recv(source=0, tag=2)
            first = comm.Recv(source=0, tag=1)
            return (first, second)

        assert SimMPI.run(2, prog)[1] == ("first", "second")

    def test_fifo_per_source_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.Send(k, dest=1, tag=9)
                return None
            return [comm.Recv(source=0, tag=9) for _ in range(5)]

        assert SimMPI.run(2, prog)[1] == list(range(5))

    def test_any_source_any_tag(self):
        def prog(comm):
            if comm.rank != 0:
                comm.Send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = sorted(comm.Recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(3))
            return got

        assert SimMPI.run(4, prog)[0] == [1, 2, 3]

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.Irecv(source=1, tag=0)
                comm.Send("ping", dest=1, tag=0)
                return req.wait()
            msg = comm.Recv(source=0, tag=0)
            comm.Send(msg + "-pong", dest=0, tag=0)
            return None

        assert SimMPI.run(2, prog)[0] == "ping-pong"

    def test_recv_buffer_shape_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(3), dest=1)
                return None
            with pytest.raises(SimMPIError, match="shape"):
                comm.Recv(np.zeros(4), source=0)
            return True

        assert SimMPI.run(2, prog)[1] is True

    def test_dest_out_of_range(self):
        def prog(comm):
            with pytest.raises(SimMPIError, match="out of range"):
                comm.Send(1, dest=5)
            return True

        assert all(SimMPI.run(2, prog))

    def test_deadlock_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Recv(source=1, tag=0)  # never sent
            return None

        with pytest.raises(DeadlockTimeout):
            SimMPI.run(2, prog, timeout=0.3)

    def test_sendrecv(self):
        def prog(comm):
            other = 1 - comm.rank
            return comm.Sendrecv(comm.rank, dest=other, recvsource=other)

        assert SimMPI.run(2, prog) == [1, 0]


class TestCollectives:
    def test_allreduce_sum(self):
        out = SimMPI.run(4, lambda c: c.allreduce(c.rank + 1))
        assert out == [10, 10, 10, 10]

    def test_allreduce_numpy_max(self):
        def prog(comm):
            v = np.array([comm.rank, -comm.rank])
            return comm.allreduce(v, op=np.maximum)

        out = SimMPI.run(3, prog)
        for v in out:
            np.testing.assert_array_equal(v, [2, 0])

    def test_bcast(self):
        def prog(comm):
            data = {"x": 1} if comm.rank == 1 else None
            return comm.bcast(data, root=1)

        assert SimMPI.run(3, prog) == [{"x": 1}] * 3

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank**2, root=0)

        out = SimMPI.run(4, prog)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_allgather(self):
        out = SimMPI.run(3, lambda c: c.allgather(c.rank))
        assert out == [[0, 1, 2]] * 3

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])

        out = SimMPI.run(3, prog)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            with pytest.raises(SimMPIError):
                comm.alltoall([1])
            return True

        assert all(SimMPI.run(3, prog))

    def test_barrier_sequences(self):
        def prog(comm):
            for _ in range(5):
                comm.barrier()
            return True

        assert all(SimMPI.run(4, prog))

    def test_allreduce_rank_order_association(self):
        """Reduction applies in rank order: bit-reproducible floats."""

        def prog(comm):
            vals = [0.1, 0.2, 0.3, 0.4]
            return comm.allreduce(vals[comm.rank])

        out = SimMPI.run(4, prog)
        expected = ((0.1 + 0.2) + 0.3) + 0.4
        assert out == [expected] * 4


class TestSplit:
    def test_paper_panel_split(self):
        """The yycore pattern: even world -> two equal panel groups."""

        def prog(comm):
            color = 0 if comm.rank < comm.size // 2 else 1
            sub = comm.split(color=color, key=comm.rank)
            return (color, sub.rank, sub.size)

        out = SimMPI.run(6, prog)
        assert out == [(0, 0, 3), (0, 1, 3), (0, 2, 3), (1, 0, 3), (1, 1, 3), (1, 2, 3)]

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert SimMPI.run(3, prog) == [2, 1, 0]

    def test_subcommunicator_isolated(self):
        """Messages in a subcommunicator don't leak to the parent."""

        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.size == 2:
                other = 1 - sub.rank
                return comm.rank, sub.Sendrecv(comm.rank, dest=other, recvsource=other)
            return None

        out = SimMPI.run(4, prog)
        assert out[0] == (0, 2) and out[2] == (2, 0)
        assert out[1] == (1, 3) and out[3] == (3, 1)

    def test_dup(self):
        def prog(comm):
            d = comm.dup()
            return (d.rank, d.size, d.id != comm.id)

        out = SimMPI.run(2, prog)
        assert out == [(0, 2, True), (1, 2, True)]

    def test_accounting_counters(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100), dest=1)
                return comm.bytes_sent, comm.messages_sent
            comm.Recv(source=0)
            return comm.bytes_sent, comm.messages_sent

        out = SimMPI.run(2, prog)
        assert out[0] == (800, 1)
        assert out[1] == (0, 0)


class TestMoveSemantics:
    def test_moved_buffer_is_senders_object(self):
        """Strongest form of zero-copy: identity is preserved."""

        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(8.0)
                comm.Send(arr, dest=1, move=True)
                return id(arr)
            got = comm.Recv(source=0)
            return id(got)

        sender_id, receiver_id = SimMPI.run(2, prog)
        assert sender_id == receiver_id

    def test_default_send_still_copies(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.zeros(4)
                comm.Send(arr, dest=1)
                arr[:] = 99.0  # must not corrupt the in-flight message
                comm.barrier()
                return None
            comm.barrier()
            return comm.Recv(source=0)

        got = SimMPI.run(2, prog)[1]
        np.testing.assert_array_equal(got, np.zeros(4))


class TestTimeoutEnv:
    def test_env_override(self, monkeypatch):
        from repro.parallel.simmpi import _timeout_from_env

        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "7.5")
        assert _timeout_from_env() == 7.5

    def test_bad_or_missing_values_fall_back(self, monkeypatch):
        from repro.parallel.simmpi import _timeout_from_env

        monkeypatch.delenv("REPRO_SIMMPI_TIMEOUT", raising=False)
        assert _timeout_from_env(default=33.0) == 33.0
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "not-a-number")
        assert _timeout_from_env(default=33.0) == 33.0
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "-5")
        assert _timeout_from_env(default=33.0) == 33.0
