"""Message shape/dtype validation against the communication plan.

A corrupted (or mis-planned) halo / overset message must fail loudly at
the receive with :class:`ProtocolViolation` naming the expected and
actual geometry — not ten frames deeper as a broadcast error inside a
stencil.  The ProcMPI slot arena additionally validates its descriptor
headers before materialising a payload.
"""

import queue as _queue
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.checkers.sanitize import ProtocolViolation
from repro.grids.yinyang import YinYangGrid
from repro.parallel.cart import create_cart
from repro.parallel.decomposition import PanelDecomposition
from repro.parallel.halo import HaloExchanger
from repro.parallel.overset_comm import OversetExchanger
from repro.parallel.procmpi import ProcMPI, _ProcRuntime
from repro.parallel.simmpi import SimMPI

_DECOMP12 = PanelDecomposition(14, 40, 1, 2)


def _halo_corrupt(comm, packed, payload_builder):
    """Rank 1 skips the exchange and sends a mis-shaped message carrying
    the tag rank 0's east-halo receive expects (phase 1, east => tag 3
    on both wire formats)."""
    cart = create_cart(comm, (1, 2))
    sub = _DECOMP12.subdomain(comm.rank)
    if comm.rank == 1:
        comm.Send(payload_builder(sub), dest=0, tag=3)
        return None
    ex = HaloExchanger(cart, sub, packed=packed)
    fields = [np.zeros((3,) + sub.local_shape)]
    ex.exchange(fields)
    return None


def _bad_shape(sub):
    return np.zeros((2, 2))


def _bad_dtype(sub):
    # the exact strip geometry rank 0 expects for a packed east recv,
    # but in float32
    oth, _ = sub.owned_local()
    n_oth = oth.stop - oth.start
    from repro.parallel.decomposition import HALO

    return np.zeros((1, 3, n_oth, HALO), dtype=np.float32)


def _halo_corrupt_packed(comm):
    return _halo_corrupt(comm, True, _bad_shape)


def _halo_corrupt_legacy(comm):
    return _halo_corrupt(comm, False, _bad_shape)


def _halo_corrupt_dtype(comm):
    return _halo_corrupt(comm, True, _bad_dtype)


class TestHaloPlanValidation:
    @pytest.mark.parametrize("prog", [_halo_corrupt_packed, _halo_corrupt_legacy])
    def test_thread_backend_rejects_wrong_shape(self, prog):
        with pytest.raises(ProtocolViolation, match="plan expects"):
            SimMPI.run(2, prog)

    def test_thread_backend_rejects_wrong_dtype(self):
        with pytest.raises(ProtocolViolation, match="float32"):
            SimMPI.run(2, _halo_corrupt_dtype)

    @pytest.mark.parametrize("prog", [_halo_corrupt_packed, _halo_corrupt_legacy])
    def test_process_backend_rejects_wrong_shape(self, prog):
        with pytest.raises(ProtocolViolation, match="plan expects"):
            ProcMPI.run(2, prog, timeout=120.0)

    def test_clean_exchange_unaffected(self):
        decomp = _DECOMP12

        def prog(comm):
            cart = create_cart(comm, (1, 2))
            sub = decomp.subdomain(comm.rank)
            ex = HaloExchanger(cart, sub)
            fields = [np.zeros((3,) + sub.local_shape)]
            ex.exchange(fields)
            return True

        assert SimMPI.run(2, prog) == [True, True]


_GRID = None


def _grid():
    global _GRID
    if _GRID is None:
        _GRID = YinYangGrid(5, 14, 40)
    return _GRID


def _overset_corrupt(world, packed):
    """World of 2 (one rank per panel).  The Yang rank (1) sends garbage
    under the tag the Yin receptor expects (tag0=0 => 4096 on both wire
    formats for the first field)."""
    grid = _grid()
    decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, 1, 1)
    panel_index = 0 if world.rank < 1 else 1
    world.split(color=panel_index, key=world.rank)
    if world.rank == 1:
        world.Send(np.zeros((2, 2)), dest=0, tag=4096)
        return None
    ex = OversetExchanger(grid, decomp, world, panel_index, 0, packed=packed)
    f = np.zeros((5, grid.yin.nth, grid.yin.nph))
    ex.exchange_scalar(f)
    return None


def _overset_corrupt_packed(world):
    return _overset_corrupt(world, True)


def _overset_corrupt_legacy(world):
    return _overset_corrupt(world, False)


class TestOversetPlanValidation:
    @pytest.mark.parametrize(
        "prog", [_overset_corrupt_packed, _overset_corrupt_legacy]
    )
    def test_thread_backend_rejects_wrong_shape(self, prog):
        with pytest.raises(ProtocolViolation, match="plan expects"):
            SimMPI.run(2, prog)

    def test_process_backend_rejects_wrong_shape(self):
        with pytest.raises(ProtocolViolation, match="plan expects"):
            ProcMPI.run(2, _overset_corrupt_packed, timeout=120.0)

    def test_clean_overset_exchange_unaffected(self):
        grid = _grid()
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, 1, 1)

        def prog(world):
            panel_index = 0 if world.rank < 1 else 1
            world.split(color=panel_index, key=world.rank)
            ex = OversetExchanger(grid, decomp, world, panel_index, 0)
            f = np.zeros((5, grid.yin.nth, grid.yin.nph))
            ex.exchange_scalar(f)
            return True

        assert SimMPI.run(2, prog) == [True, True]


class TestSlotArenaHeaderCheck:
    """The ProcMPI shared-memory transport validates descriptor headers
    (shape x itemsize == nbytes, slot count == ceil(nbytes/slot_bytes))
    before materialising — and returns the slots on failure."""

    @pytest.fixture
    def rt(self):
        rt = object.__new__(_ProcRuntime)
        rt.slot_bytes = 4096
        rt.arena = shared_memory.SharedMemory(create=True, size=4 * 4096)
        rt.free_q = _queue.Queue()
        yield rt
        rt.arena.close()
        rt.arena.unlink()

    def test_consistent_header_materialises(self, rt):
        src = np.arange(16, dtype=np.float64)
        np.frombuffer(rt.arena.buf, dtype=np.float64, count=16)[:] = src
        out = rt._read_slots(((0,), (16,), "<f8", 128))
        np.testing.assert_array_equal(out, src)
        assert rt.free_q.get_nowait() == 0

    def test_nbytes_shape_mismatch_rejected(self, rt):
        with pytest.raises(ProtocolViolation, match="header inconsistent"):
            rt._read_slots(((0,), (32,), "<f8", 128))
        # the slot went back to the free queue, not leaked
        assert rt.free_q.get_nowait() == 0

    def test_slot_count_mismatch_rejected(self, rt):
        with pytest.raises(ProtocolViolation, match="slot"):
            rt._read_slots(((0, 1), (16,), "<f8", 128))
        assert {rt.free_q.get_nowait(), rt.free_q.get_nowait()} == {0, 1}

    def test_dtype_mismatch_caught_via_itemsize(self, rt):
        # a float32 header for a float64-sized payload is inconsistent
        with pytest.raises(ProtocolViolation):
            rt._read_slots(((0,), (16,), "<f4", 128))
