"""Non-blocking point-to-point parity across launcher backends.

The split-phase exchange (REPRO_OVERLAP=1) rests on every backend
implementing the same ``Isend``/``Irecv``/``Request.wait``/``Waitall``
contract: requests may be waited out of posting order, ``move=True``
payloads hand the buffer to the comm layer, and the sanitizer's
:class:`~repro.checkers.sanitize.ProtocolRecorder` tracks each request
from post to wait.  These tests pin the contract on the thread backend
with randomised message graphs, then cross-check every other available
backend against the thread backend's results with a picklable
module-level program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.sanitize import ProtocolRecorder
from repro.parallel.backends import available_backends, get_backend, probe
from repro.parallel.simmpi import SimMPI


@st.composite
def message_graphs(draw):
    """A random directed multigraph of messages among <= 5 ranks."""
    n = draw(st.integers(2, 5))
    n_msgs = draw(st.integers(1, 10))
    edges = [
        (
            draw(st.integers(0, n - 1)),  # source
            draw(st.integers(0, n - 1)),  # dest
            draw(st.integers(0, 3)),  # tag
            draw(st.integers(1, 40)),  # payload length
        )
        for _ in range(n_msgs)
    ]
    return n, edges


class TestNonblockingThread:
    @settings(max_examples=12, deadline=None)
    @given(message_graphs())
    def test_isend_irecv_waitall_out_of_order(self, graph):
        """Random graphs sent with Isend(move=True), received with
        Irecv and drained with Waitall in *reversed* posting order —
        everything sent must still arrive."""
        n, edges = graph

        def prog(comm):
            me = comm.rank
            my_recvs = [e for e in edges if e[1] == me]
            my_sends = [e for e in edges if e[0] == me]
            reqs = [
                comm.Irecv(source=src, tag=tag)
                for (src, _dst, tag, _ln) in my_recvs
            ]
            sends = []
            for (_src, dst, tag, ln) in my_sends:
                payload = np.full(ln, me, dtype=np.float64)
                sends.append(comm.Isend(payload, dest=dst, tag=tag, move=True))
            got = [np.asarray(v) for v in comm.Waitall(list(reversed(reqs)))]
            comm.Waitall(sends)
            return sorted((arr.size, int(arr[0])) for arr in got)

        results = SimMPI.run(n, prog, timeout=10.0)
        for rank, got in enumerate(results):
            expected = sorted(
                (ln, src) for (src, _dst, _tag, ln) in edges if _dst == rank
            )
            assert got == expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 2**31 - 1))
    def test_wait_is_idempotent_and_ordered(self, n, seed):
        """wait() twice returns the same payload; Wait is an alias."""
        rng = np.random.default_rng(seed)
        # small integers: token + rank - token is exact in float64
        token = rng.integers(0, 100, size=6).astype(np.float64)

        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            req = comm.Irecv(source=prev, tag=3)
            comm.Isend(token + comm.rank, dest=nxt, tag=3).Wait()
            first = np.asarray(req.wait())
            second = np.asarray(req.wait())
            np.testing.assert_array_equal(first, second)
            return float(first[0] - token[0])

        results = SimMPI.run(n, prog, timeout=10.0)
        assert results == [float((r - 1) % n) for r in range(n)]


def _parity_prog(comm):
    """Module-level (picklable) ring parity program.

    Posts receives from both neighbours, sends with Isend (one plain,
    one move=True), waits out of posting order, and reduces the
    payloads to a deterministic per-rank signature.
    """
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    reqs = [comm.Irecv(source=left, tag=5), comm.Irecv(source=right, tag=7)]
    plain = np.full(16, float(comm.rank))
    s1 = comm.Isend(plain, dest=right, tag=5)
    fresh = np.arange(8.0) + comm.rank
    s2 = comm.Isend(fresh, dest=left, tag=7, move=True)
    got = [np.asarray(v) for v in comm.Waitall(list(reversed(reqs)))]
    comm.Waitall([s1, s2])
    return [float(g.sum()) for g in got]


_CROSS_BACKENDS = [
    b for b in ("process", "socket", "mpi4py")
    if b in available_backends() and probe(b).capabilities.self_launch
]


class TestCrossBackendParity:
    def test_thread_backend_baseline(self):
        results = SimMPI.run(4, _parity_prog, timeout=30.0)
        for rank, (first, second) in enumerate(results):
            left, right = (rank - 1) % 4, (rank + 1) % 4
            # reversed wait order: the tag-7 (move=True) payload first
            assert first == float(np.arange(8.0).sum()) + 8 * right
            assert second == 16.0 * left

    @pytest.mark.parametrize("backend", _CROSS_BACKENDS)
    def test_backend_matches_thread(self, backend):
        expected = SimMPI.run(4, _parity_prog, timeout=30.0)
        launcher = get_backend(backend)
        got = launcher.run(4, _parity_prog, timeout=180.0)
        assert got == expected

    def test_every_backend_advertises_nonblocking(self):
        for name in ("thread", "process", "socket", "mpi4py"):
            assert probe(name).capabilities.nonblocking, name


class TestRequestLifetimeTracking:
    def test_unwaited_request_fails_report(self):
        rec = ProtocolRecorder()
        token = rec.note_request_open("Irecv")
        report = rec.report()
        assert not report.ok
        assert "unwaited request Irecv" in report.summary()
        rec.note_request_done(token)
        assert rec.report().ok

    def test_waited_requests_counted(self):
        rec = ProtocolRecorder()
        for _ in range(3):
            rec.note_request_done(rec.note_request_open("Isend"))
        report = rec.report()
        assert report.ok and report.n_requests == 3

    def test_merged_snapshots_surface_leaks(self):
        a, b = ProtocolRecorder(), ProtocolRecorder()
        a.note_request_done(a.note_request_open("Isend"))
        b.note_request_open("Irecv")  # leaked on purpose
        merged = ProtocolRecorder.merged([a.snapshot(), b.snapshot()])
        report = merged.report()
        assert not report.ok and report.n_requests == 2

    def test_sanitized_thread_run_waits_all_requests(self, monkeypatch):
        """A full Isend/Irecv round under the shared runtime recorder
        leaves no open requests behind."""

        def prog(comm):
            req = comm.Irecv(source=(comm.rank - 1) % comm.size, tag=1)
            comm.Isend(
                np.full(4, float(comm.rank)),
                dest=(comm.rank + 1) % comm.size, tag=1,
            ).wait()
            return float(np.asarray(req.wait())[0])

        results = SimMPI.run(3, prog, timeout=10.0)
        assert results == [2.0, 0.0, 1.0]
