import numpy as np
import pytest

from repro.grids.component import ComponentGrid
from repro.grids.latlon import LatLonGrid
from repro.mhd.cfl import estimate_dt, min_cell_widths, signal_speeds
from repro.mhd.initial import conduction_state
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


class TestCellWidths:
    def test_component_widths(self):
        g = ComponentGrid.build(9, 12, 36)
        dr, rdth, rsdph = min_cell_widths(g)
        assert dr == pytest.approx(g.dr)
        assert rdth == pytest.approx(g.ri * g.dtheta)
        smin = np.abs(np.sin(g.theta[1:-1])).min()
        assert rsdph == pytest.approx(g.ri * smin * g.dphi)

    def test_yinyang_width_bounded_by_sqrt2(self):
        """The panel's sin(theta) never drops below ~ 1/sqrt(2):
        the Yin-Yang grid has no pole clustering (Section II)."""
        g = ComponentGrid.build(9, 40, 118)
        _, rdth, rsdph = min_cell_widths(g)
        assert rsdph > rdth / 1.6

    def test_latlon_pole_throttling(self):
        """The lat-lon grid's minimum width collapses with resolution."""
        g1 = LatLonGrid.build(9, 16, 32)
        g2 = LatLonGrid.build(9, 32, 64)
        w1 = min(min_cell_widths(g1))
        w2 = min(min_cell_widths(g2))
        # dphi halves AND sin(theta_min) halves: ~4x smaller
        assert w1 / w2 > 3.0


class TestSignalSpeeds:
    def test_sound_speed_of_conduction_state(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        sp = signal_speeds(s, params)
        # max T is at the inner wall
        assert sp.sound == pytest.approx(
            np.sqrt(params.gamma * params.t_inner), rel=1e-6
        )
        assert sp.flow == 0.0
        assert sp.alfven == 0.0

    def test_flow_speed(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        s.fr[:] = 0.3 * s.rho
        sp = signal_speeds(s, params)
        assert sp.flow == pytest.approx(0.3, rel=1e-12)

    def test_alfven_with_explicit_b(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        b = (np.full(g.shape, 0.5), np.zeros(g.shape), np.zeros(g.shape))
        sp = signal_speeds(s, params, b_fields=b)
        rho_min = s.rho.min()
        assert sp.alfven == pytest.approx(0.5 / np.sqrt(rho_min))

    def test_fast_is_sum(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        sp = signal_speeds(s, params)
        assert sp.fast == sp.sound + sp.alfven + sp.flow


class TestEstimateDt:
    def test_positive_and_finite(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        dt = estimate_dt([(g, s)], params)
        assert 0.0 < dt < 1.0

    def test_scales_with_cfl(self, params):
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, params)
        a = estimate_dt([(g, s)], params, cfl=0.2)
        b = estimate_dt([(g, s)], params, cfl=0.4)
        assert b == pytest.approx(2.0 * a)

    def test_min_over_patches(self, params):
        coarse = ComponentGrid.build(9, 12, 36)
        fine = ComponentGrid.build(33, 12, 36)
        s1 = conduction_state(coarse, params)
        s2 = conduction_state(fine, params)
        both = estimate_dt([(coarse, s1), (fine, s2)], params)
        assert both == pytest.approx(estimate_dt([(fine, s2)], params))

    def test_diffusive_limit_engages(self):
        """Huge viscosity: dt is set by the diffusive bound ~ h^2."""
        p_lo = MHDParameters(mu=1e-4, kappa=1e-4, eta=1e-4)
        p_hi = MHDParameters(mu=10.0, kappa=1e-4, eta=1e-4)
        g = ComponentGrid.build(9, 12, 36)
        s = conduction_state(g, p_lo)
        dt_lo = estimate_dt([(g, s)], p_lo)
        dt_hi = estimate_dt([(g, s)], p_hi)
        assert dt_hi < dt_lo / 100.0

    def test_empty_input_raises(self, params):
        with pytest.raises(ValueError):
            estimate_dt([], params)

    def test_latlon_pays_pole_penalty(self, params):
        """Same interior resolution: the lat-lon grid's dt is far below
        the Yin-Yang panel's — Section II's motivation, quantified."""
        yy = ComponentGrid.build(9, 24, 70)
        ll = LatLonGrid.build(9, 46, 92)  # comparable angular spacing
        s_yy = conduction_state(yy, params)
        s_ll = conduction_state(ll, params)
        dt_yy = estimate_dt([(yy, s_yy)], params)
        dt_ll = estimate_dt([(ll, s_ll)], params)
        assert dt_yy / dt_ll > 3.0
