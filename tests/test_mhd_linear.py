import pytest

from repro.mhd.linear import GrowthMeasurement, critical_rayleigh, measure_growth_rate


class TestGrowthRate:
    def test_subcritical_decays(self):
        g = measure_growth_rate(1e3, 2e-3)
        assert not g.growing
        assert g.rate < -0.5

    def test_supercritical_grows(self):
        g = measure_growth_rate(5e4, 2e-3)
        assert g.growing
        assert g.rate > 0.3

    def test_rate_monotone_in_rayleigh(self):
        r1 = measure_growth_rate(1e3, 2e-3).rate
        r2 = measure_growth_rate(1e4, 2e-3).rate
        r3 = measure_growth_rate(5e4, 2e-3).rate
        assert r1 < r2 < r3

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_growth_rate(-1.0, 2e-3)
        with pytest.raises(ValueError):
            measure_growth_rate(1e4, 2e-3, mode=0)

    def test_measurement_record(self):
        g = measure_growth_rate(1e3, 2e-3)
        assert isinstance(g, GrowthMeasurement)
        assert g.rayleigh == 1e3 and g.ekman == 2e-3
        assert g.kinetic_final > 0.0


@pytest.mark.slow
class TestCriticalRayleigh:
    def test_onset_bracketed(self):
        """Ra_c at Ek = 2e-3 on the coarse test grid sits between the
        clearly-decaying and clearly-growing probes (~1e4)."""
        ra_c, (lo, hi) = critical_rayleigh(
            2e-3, bracket=(1e3, 5e4), iterations=3
        )
        assert 2e3 < ra_c < 4e4
        assert lo < ra_c < hi

    def test_bad_bracket_rejected(self):
        with pytest.raises(ValueError, match="already convects"):
            critical_rayleigh(2e-3, bracket=(5e4, 1e5), iterations=1)
