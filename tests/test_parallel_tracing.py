import numpy as np

from repro.parallel.cart import create_cart
from repro.parallel.decomposition import PanelDecomposition
from repro.parallel.halo import HaloExchanger
from repro.parallel.simmpi import SimMPI
from repro.parallel.tracing import CommTrace, TracedCommunicator


class TestTraceBasics:
    def test_records_messages(self):
        trace = CommTrace()

        def prog(comm):
            t = TracedCommunicator(comm, trace)
            if comm.rank == 0:
                t.Send(np.zeros(10), dest=1, tag=7)
            else:
                t.Recv(source=0, tag=7)
            return True

        assert all(SimMPI.run(2, prog))
        assert trace.n_messages == 1
        rec = trace.records[0]
        assert (rec.source, rec.dest, rec.tag, rec.nbytes) == (0, 1, 7, 80)

    def test_matrix_and_partners(self):
        trace = CommTrace()

        def prog(comm):
            t = TracedCommunicator(comm, trace)
            nxt = (comm.rank + 1) % comm.size
            t.Send(np.zeros(comm.rank + 1), dest=nxt)
            t.Recv(source=(comm.rank - 1) % comm.size)
            return True

        SimMPI.run(3, prog)
        m = trace.matrix(3)
        assert m[0, 1] == 8 and m[1, 2] == 16 and m[2, 0] == 24
        sent, recv = trace.partners_of(1)
        assert sent == {2} and recv == {0}

    def test_delegation(self):
        trace = CommTrace()

        def prog(comm):
            t = TracedCommunicator(comm, trace)
            return t.allreduce(t.rank)

        assert SimMPI.run(3, prog) == [3, 3, 3]


class TestHaloPattern:
    def test_four_neighbour_structure(self):
        """Section IV: 'Each process has four neighbors (north, east,
        south, and west)' — the trace must show exactly that."""
        trace = CommTrace()
        decomp = PanelDecomposition(18, 36, 3, 3)

        def prog(comm):
            t = TracedCommunicator(comm, trace)
            cart = create_cart(t, (3, 3))
            sub = decomp.subdomain(comm.rank)
            ex = HaloExchanger(cart, sub)
            f = np.zeros((3, *sub.local_shape))
            ex.exchange([f])
            return True

        SimMPI.run(9, prog)
        # the centre tile (rank 4) talks to exactly its 4 neighbours
        sent, recv = trace.partners_of(4)
        assert sent == {1, 3, 5, 7}
        assert recv == {1, 3, 5, 7}
        # corner tile: exactly 2 neighbours
        sent0, _ = trace.partners_of(0)
        assert sent0 == {1, 3}

    def test_volume_matches_exchanger_model(self):
        trace = CommTrace()
        decomp = PanelDecomposition(18, 36, 2, 2)

        def prog(comm):
            t = TracedCommunicator(comm, trace)
            cart = create_cart(t, (2, 2))
            sub = decomp.subdomain(comm.rank)
            ex = HaloExchanger(cart, sub)
            f = np.zeros((3, *sub.local_shape))
            ex.exchange([f])
            return ex.bytes_per_exchange(3, 1)

        predicted = SimMPI.run(4, prog)
        m = trace.matrix(4)
        for rank in range(4):
            assert int(m[rank].sum()) == predicted[rank]
