"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import RunConfig
from repro.grids import ComponentGrid, LatLonGrid, YinYangGrid
from repro.mhd import MHDParameters

# keep property tests fast and deterministic in CI
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def demo_params() -> MHDParameters:
    return MHDParameters.laptop_demo()

@pytest.fixture(scope="session")
def small_component() -> ComponentGrid:
    """A Yin panel small enough for per-test operator evaluations."""
    return ComponentGrid.build(9, 14, 40)


@pytest.fixture(scope="session")
def small_yinyang() -> YinYangGrid:
    return YinYangGrid(9, 14, 40)


@pytest.fixture(scope="session")
def small_latlon() -> LatLonGrid:
    return LatLonGrid.build(9, 12, 24)


@pytest.fixture()
def tiny_config(demo_params) -> RunConfig:
    """Fixed-dt configuration for fast, deterministic solver tests."""
    return RunConfig(
        nr=7, nth=12, nph=36, params=demo_params, dt=1e-3, amp_temperature=1e-2
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20040415)


def full_field(grid, expr):
    """Broadcast an ``(r3, theta3, phi3)`` expression to a full array."""
    return np.broadcast_to(expr, grid.shape).copy()
