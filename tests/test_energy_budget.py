"""Energy-budget consistency of the discretised equations (2)-(5)."""

import numpy as np

from repro.core import RunConfig, YinYangDynamo
from repro.mhd.diagnostics import yinyang_total_energy
from repro.mhd.parameters import MHDParameters


def total_energy_drift(params, nr, n_steps=10, dt=5e-4, amp=2e-2):
    cfg = RunConfig(
        nr=nr, nth=12, nph=36, params=params, dt=dt,
        amp_temperature=amp, amp_seed_field=0.0, seed=5,
    )
    dyn = YinYangDynamo(cfg)
    e0 = yinyang_total_energy(dyn.grid, dyn.state, params)
    dyn.run(n_steps, record_every=0)
    assert dyn.is_physical()
    e1 = yinyang_total_energy(dyn.grid, dyn.state, params)
    return abs(e1 - e0) / abs(e0)


class TestConservation:
    def test_near_ideal_flow_conserves_total_energy(self):
        """With tiny dissipation the total (kinetic + magnetic + internal
        + gravitational) energy drifts only at truncation level."""
        params = MHDParameters(
            mu=1e-6, kappa=1e-6, eta=1e-6, omega=5.0, g0=2.0, t_inner=2.0
        )
        drift = total_energy_drift(params, nr=11)
        assert drift < 5e-4

    def test_drift_small_across_resolutions(self):
        """The drift stays at round-off/quadrature level (< 1e-6 of the
        total) for every tested radial resolution."""
        params = MHDParameters(
            mu=1e-6, kappa=1e-6, eta=1e-6, omega=5.0, g0=2.0, t_inner=2.0
        )
        for nr in (9, 13, 17):
            assert total_energy_drift(params, nr=nr) < 1e-6

    def test_strong_conduction_leaks_energy_through_walls(self):
        """With large kappa and fixed wall temperatures, heat flows
        through the boundaries: the total energy is NOT conserved and
        changes far more than the ideal run's drift."""
        ideal = MHDParameters(
            mu=1e-6, kappa=1e-6, eta=1e-6, omega=5.0, g0=2.0, t_inner=2.0
        )
        conducting = MHDParameters(
            mu=1e-6, kappa=5e-2, eta=1e-6, omega=5.0, g0=2.0, t_inner=2.0
        )
        d_ideal = total_energy_drift(ideal, nr=11)
        d_cond = total_energy_drift(conducting, nr=11)
        assert d_cond > 100 * d_ideal

    def test_coriolis_does_no_work(self):
        """Rotation reshuffles momentum but cannot change the energy:
        drifts with and without rotation are comparable."""
        base = dict(mu=1e-6, kappa=1e-6, eta=1e-6, g0=2.0, t_inner=2.0)
        d_rot = total_energy_drift(MHDParameters(omega=20.0, **base), nr=11)
        d_no = total_energy_drift(MHDParameters(omega=0.0, **base), nr=11)
        assert d_rot < 10 * max(d_no, 1e-6)

    def test_viscosity_dissipates_kinetic_energy(self):
        """A sheared flow with large viscosity loses kinetic energy and
        (through Phi) heats the fluid."""
        from repro.grids.component import Panel

        params = MHDParameters(
            mu=5e-2, kappa=1e-6, eta=1e-6, omega=0.0, g0=2.0, t_inner=2.0
        )
        cfg = RunConfig(
            nr=11, nth=12, nph=36, params=params, dt=2e-4,
            amp_temperature=0.0, amp_seed_field=0.0,
        )
        dyn = YinYangDynamo(cfg)
        # impose a differential rotation (sheared azimuthal flow)
        for p in (Panel.YIN, Panel.YANG):
            g = dyn.grid.panel(p)
            s = dyn.state[p]
            prof = np.sin(np.pi * (g.r - g.ri) / (g.ro - g.ri))
            s.fph[:] = 0.05 * s.rho * prof[:, None, None]
        dyn.enforce(dyn.state)
        ke0 = dyn.energies().kinetic
        te0 = dyn.energies().thermal
        dyn.run(20, record_every=0)
        assert dyn.energies().kinetic < ke0
        assert dyn.energies().thermal > te0

    def test_ohmic_heating_converts_magnetic_to_thermal(self):
        params = MHDParameters(
            mu=1e-6, kappa=1e-6, eta=5e-2, omega=0.0, g0=2.0, t_inner=2.0
        )
        cfg = RunConfig(
            nr=11, nth=12, nph=36, params=params, dt=2e-4,
            amp_temperature=0.0, amp_seed_field=1e-2, seed=8,
        )
        dyn = YinYangDynamo(cfg)
        me0 = dyn.energies().magnetic
        te0 = dyn.energies().thermal
        dyn.run(20, record_every=0)
        assert dyn.energies().magnetic < me0
        assert dyn.energies().thermal > te0
