import numpy as np

from repro.perf.flopcount_array import CountingArray, count_flops, wrap


class TestCounting:
    def test_simple_expression(self):
        a = wrap(np.ones(100))
        b = wrap(np.ones(100))
        with count_flops() as fc:
            _ = a * b + a
        assert fc.flops == 200

    def test_counts_by_output_size(self):
        a = wrap(np.ones((10, 1)))
        b = wrap(np.ones((1, 20)))
        with count_flops() as fc:
            _ = a * b  # broadcasts to 200 elements
        assert fc.flops == 200

    def test_mixed_plain_and_wrapped(self):
        a = wrap(np.ones(50))
        plain = np.ones(50)
        with count_flops() as fc:
            _ = a + plain
        assert fc.flops == 50

    def test_scalar_operand(self):
        a = wrap(np.ones(30))
        with count_flops() as fc:
            _ = 2.0 * a
        assert fc.flops == 30

    def test_inactive_outside_context(self):
        a = wrap(np.ones(10))
        _ = a + a
        with count_flops() as fc:
            pass
        assert fc.flops == 0

    def test_nested_context_restores(self):
        a = wrap(np.ones(10))
        with count_flops() as outer:
            _ = a + a
            with count_flops() as inner:
                _ = a * a
            _ = a - a
        assert inner.flops == 10
        assert outer.flops == 20  # inner tally excluded from outer

    def test_transcendentals_cost_more(self):
        a = wrap(np.ones(10))
        with count_flops() as fc:
            _ = np.sin(a)
        assert fc.flops == 40  # 4 flops/element

    def test_reduce_counts_input_size(self):
        a = wrap(np.ones((5, 6)))
        with count_flops() as fc:
            _ = np.add.reduce(a, axis=0)
        assert fc.flops == 30

    def test_by_ufunc_breakdown(self):
        a = wrap(np.ones(10))
        with count_flops() as fc:
            _ = a * a
            _ = a + a
            _ = a + a
        assert fc.by_ufunc["multiply"] == 10
        assert fc.by_ufunc["add"] == 20

    def test_comparison_not_counted(self):
        a = wrap(np.ones(10))
        with count_flops() as fc:
            _ = a > 0.5
        assert fc.flops == 0

    def test_result_type_propagates(self):
        a = wrap(np.ones(5))
        out = a + 1.0
        assert isinstance(out, CountingArray)

    def test_view_does_not_copy(self):
        base = np.ones(5)
        a = wrap(base)
        a[0] = 7.0
        assert base[0] == 7.0

    def test_inplace_ops_counted(self):
        a = wrap(np.ones(20))
        with count_flops() as fc:
            a += 1.0
            a *= 2.0
        assert fc.flops == 40
