"""Process-backed SimMPI: shared-memory transport, collectives, errors.

Every rank function here is module-level — the ``spawn`` start method
pickles it into each worker process.  Spawning is expensive (~1 s per
world on a laptop), so each test packs as much coverage as possible
into a single world.
"""

import numpy as np
import pytest

from repro.parallel.backends import available_backends, get_backend
from repro.parallel.procmpi import ProcMPI, ProcWorkerError
from repro.parallel.simmpi import SimMPI, SimMPIError


def _combined_prog(comm):
    """Ring p2p + every collective + split, in one spawned world."""
    rank, size = comm.rank, comm.size
    # ring pass of a float array
    token = np.array([float(rank), float(rank) ** 2])
    comm.Send(token, dest=(rank + 1) % size, tag=7)
    got = comm.Recv(source=(rank - 1) % size, tag=7)
    ring_ok = bool(np.array_equal(got, np.array(
        [float((rank - 1) % size), float((rank - 1) % size) ** 2])))

    total = comm.allreduce(np.array([1.0, float(rank)]), op=np.add)
    gathered = comm.allgather(rank * 10)
    swapped = comm.alltoall([rank * 100 + d for d in range(size)])
    root_val = comm.bcast("payload" if rank == 0 else None, root=0)

    sub = comm.split(color=rank % 2, key=rank)
    sub_sum = sub.allreduce(1, op=lambda a, b: a + b)

    # a message larger than one arena slot (default 1 MiB): 4 MiB
    big = np.full((4, 1024, 128), float(rank), dtype=np.float64)
    comm.Send(big, dest=(rank + 1) % size, tag=9)
    big_in = comm.Recv(source=(rank - 1) % size, tag=9)
    big_ok = bool(np.all(big_in == float((rank - 1) % size))) \
        and big_in.shape == big.shape

    comm.barrier()
    return dict(
        ring_ok=ring_ok, total=total.tolist(), gathered=gathered,
        swapped=swapped, root_val=root_val, sub_sum=sub_sum, big_ok=big_ok,
    )


def _failing_prog(comm):
    if comm.rank == 1:
        raise ValueError("deliberate rank failure")
    comm.barrier()
    return comm.rank


def _pair_prog(comm):
    """Tiny two-rank program used for thread-vs-process comparisons."""
    other = 1 - comm.rank
    comm.Send(np.arange(6, dtype=np.float64) * (comm.rank + 1), dest=other)
    got = comm.Recv(source=other)
    red = comm.allreduce(float(comm.rank + 1), op=lambda a, b: a + b)
    return got.tolist(), red


class TestBackendRegistry:
    def test_names(self):
        assert available_backends() == ["thread", "process", "socket"]
        assert get_backend("thread") is SimMPI
        assert get_backend("process") is ProcMPI

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown launcher backend"):
            get_backend("rdma")


class TestProcessWorld:
    def test_p2p_collectives_split_and_large_messages(self):
        size = 4
        results = ProcMPI.run(size, _combined_prog, timeout=120.0)
        for rank, res in enumerate(results):
            assert res["ring_ok"], rank
            assert res["big_ok"], rank
            assert res["total"] == [float(size), float(sum(range(size)))]
            assert res["gathered"] == [r * 10 for r in range(size)]
            assert res["swapped"] == [s * 100 + rank for s in range(size)]
            assert res["root_val"] == "payload"
            assert res["sub_sum"] == size // 2

    def test_child_exception_reraised(self):
        with pytest.raises(ValueError, match="deliberate rank failure"):
            ProcMPI.run(2, _failing_prog, timeout=60.0)

    def test_matches_thread_backend(self):
        proc = ProcMPI.run(2, _pair_prog, timeout=60.0)
        thread = SimMPI.run(2, _pair_prog, timeout=60.0)
        assert proc == thread

    def test_is_simmpi_error_family(self):
        assert issubclass(ProcWorkerError, SimMPIError)
