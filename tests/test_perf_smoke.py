"""Fast, wall-clock-free perf smoke checks for the fused RHS path.

Timing a kernel in CI is flaky; the *work counters* are deterministic.
These tests pin the properties the benchmark relies on: the cached path
executes strictly fewer stencil kernels than the reference path, and
the buffer pool reaches a steady state where RHS evaluations allocate
nothing.
"""

import numpy as np
import pytest

from repro.fd.stencils import reset_stencil_counts, stencil_counts
from repro.grids.component import ComponentGrid
from repro.mhd.equations import PanelEquations
from repro.mhd.parameters import MHDParameters
from repro.mhd.state import MHDState


@pytest.fixture(scope="module")
def case():
    params = MHDParameters.laptop_demo()
    patch = ComponentGrid.build(7, 10, 24)
    rng = np.random.default_rng(40)

    def noise(base):
        return base + 0.2 * rng.standard_normal(patch.shape)

    state = MHDState(
        rho=noise(1.0), fr=noise(0.0), fth=noise(0.0), fph=noise(0.0),
        p=noise(1.0), ar=noise(0.0), ath=noise(0.0), aph=noise(0.0),
    )
    omega = (0.0, 0.0, params.omega)
    fused = PanelEquations(patch, params, omega, fused=True)
    reference = PanelEquations(patch, params, omega, fused=False)
    return state, fused, reference


def _stencils_for(eq, state):
    reset_stencil_counts()
    eq.rhs(state)
    counts = stencil_counts()
    reset_stencil_counts()
    return counts


def test_cached_path_runs_strictly_fewer_stencils(case):
    state, fused, reference = case
    fused_counts = _stencils_for(fused, state)
    ref_counts = _stencils_for(reference, state)
    assert fused_counts["diff"] < ref_counts["diff"]
    assert fused_counts["diff2"] <= ref_counts["diff2"]
    assert sum(fused_counts.values()) < sum(ref_counts.values())


def test_cached_path_stencil_budget(case):
    """The fused kernel's exact stencil budget: 44 first + 3 second
    derivatives (vs 71 + 3 on the reference path).  A regression that
    silently re-derives something shows up here, not in wall clock."""
    state, fused, reference = case
    assert _stencils_for(fused, state) == {"diff": 44, "diff2": 3}
    assert _stencils_for(reference, state) == {"diff": 71, "diff2": 3}


def test_cache_accounting_per_evaluation(case):
    """47 primitive derivatives per evaluation, 6 served from cache
    (the continuity/advection and grad-p/advect-p shared operands)."""
    state, fused, _ = case
    fused.rhs(state)
    fused.cache.reset_stats()
    fused.rhs(state)
    assert fused.cache.stats() == {"hits": 6, "misses": 47, "entries": 0}


def test_pool_reaches_allocation_free_steady_state(case):
    state, fused, _ = case
    fused.rhs(state)  # warm: first call may grow the pool
    fused.pool.allocated = 0
    fused.pool.reused = 0
    for _ in range(3):
        fused.rhs(state)
    stats = fused.pool.stats()
    assert stats["allocated"] == 0
    assert stats["reused"] > 0
