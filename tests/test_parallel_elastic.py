"""Elastic restart: re-decomposing checkpoints across rank counts.

The claim under test (see :mod:`repro.parallel.elastic`): a per-rank
checkpoint family assembles into the exact global post-enforce state,
so a restart on a *different* rank count — or the serial driver — is
bitwise identical to never having stopped.  Bitwise *evolution*
comparisons stick to the 1x1 / 1x2 layouts the rest of the suite
asserts bitwise; cross-layout *reconstruction* (zero further steps) is
exact for any layout pair.
"""

import numpy as np
import pytest

from repro.checkers.fingerprint import assert_bitwise_equal, states_root_digest
from repro.core import RunConfig, YinYangDynamo
from repro.core.checkpoint import read_meta, save_checkpoint
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.mhd.state import MHDState
from repro.parallel.elastic import (
    assemble_rank_files,
    find_rank_files,
    load_any_checkpoint,
)
from repro.parallel.parallel_solver import run_parallel_dynamo


@pytest.fixture(scope="module")
def config():
    return RunConfig(nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
                     dt=1e-3, amp_temperature=1e-2)


def _assert_pair_equal(got, want, context=""):
    assert_bitwise_equal(got, want, context=context)


class TestCheckpointMeta:
    def test_meta_roundtrip(self, tmp_path):
        state = MHDState.zeros((3, 4, 5))
        path = save_checkpoint(tmp_path / "tile.npz", state,
                               meta=dict(panel="yin", panel_rank=2, pth=1.5))
        meta = read_meta(path)
        # every archive also carries its auto-embedded state fingerprint
        assert meta.pop("fingerprint") == states_root_digest(state)
        assert meta == {"panel": "yin", "panel_rank": 2, "pth": 1.5}
        assert isinstance(meta["panel_rank"], int)

    def test_archive_without_meta_reads_only_fingerprint(self, tmp_path):
        path = save_checkpoint(tmp_path / "bare.npz", MHDState.zeros((3, 4, 5)))
        assert set(read_meta(path)) == {"fingerprint"}


class TestElasticRestart:
    def test_restart_on_fewer_ranks_is_bitwise(self, config, tmp_path):
        """1x2 world (4 ranks) checkpoints at step 3; a 1x1 world
        (2 ranks) finishes the run — on the thread, process and socket
        launchers — bitwise equal to the uninterrupted 1x2 run."""
        baseline = run_parallel_dynamo(config, 1, 2, 6)
        first = run_parallel_dynamo(config, 1, 2, 3,
                                    checkpoint_dir=str(tmp_path),
                                    checkpoint_every=3)
        assert first.steps == 3
        base = tmp_path / "checkpoint_000003.npz"
        assert len(find_rank_files(base)) == 4
        for backend in ("thread", "process", "socket"):
            resumed = run_parallel_dynamo(config, 1, 1, 3, backend=backend,
                                          timeout=240.0, restart=str(base))
            assert resumed.steps == 6, backend
            assert resumed.time == baseline.time, backend
            _assert_pair_equal(resumed.states, baseline.states, backend)

    def test_restart_on_more_ranks_is_bitwise(self, config, tmp_path):
        """The other direction: 1x1 checkpoints, 1x2 finishes."""
        baseline = run_parallel_dynamo(config, 1, 1, 4)
        run_parallel_dynamo(config, 1, 1, 2, checkpoint_dir=str(tmp_path),
                            checkpoint_every=2)
        resumed = run_parallel_dynamo(
            config, 1, 2, 2, restart=str(tmp_path / "checkpoint_000002.npz"))
        assert resumed.steps == 4
        _assert_pair_equal(resumed.states, baseline.states, "1x1->1x2")

    def test_same_layout_restart_uses_direct_tiles(self, config, tmp_path):
        """Matching layout keeps the per-rank fast path and is bitwise."""
        baseline = run_parallel_dynamo(config, 1, 2, 4)
        run_parallel_dynamo(config, 1, 2, 2, checkpoint_dir=str(tmp_path),
                            checkpoint_every=2)
        resumed = run_parallel_dynamo(
            config, 1, 2, 2, restart=str(tmp_path / "checkpoint_000002.npz"))
        _assert_pair_equal(resumed.states, baseline.states, "1x2->1x2")

    def test_cross_layout_reconstruction_is_exact(self, config, tmp_path):
        """Assembling a 2x2 family reproduces the gathered global state
        bit for bit — the stitch-only-owned-blocks argument, checked on
        a layout the evolution comparisons cannot cover."""
        res = run_parallel_dynamo(config, 2, 2, 2,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=2)
        pair, t, step = load_any_checkpoint(tmp_path / "checkpoint_000002.npz")
        assert (t, step) == (res.time, 2)
        _assert_pair_equal(pair, res.states, "2x2 assembly")

    def test_serial_restart_from_rank_family(self, config, tmp_path):
        """The serial driver restarts from a parallel tile family."""
        res = run_parallel_dynamo(config, 1, 2, 2,
                                  checkpoint_dir=str(tmp_path),
                                  checkpoint_every=2)
        dyn = YinYangDynamo(config)
        dyn.restore_checkpoint(tmp_path / "checkpoint_000002.npz")
        assert (dyn.time, dyn.step_count) == (res.time, 2)
        _assert_pair_equal(dyn.state, res.states, "serial restore")


class TestAssemblyErrors:
    @pytest.fixture()
    def family(self, config, tmp_path):
        run_parallel_dynamo(config, 1, 2, 2, checkpoint_dir=str(tmp_path),
                            checkpoint_every=2)
        return tmp_path / "checkpoint_000002.npz"

    def test_incomplete_family(self, family):
        files = find_rank_files(family)
        files[-1].unlink()
        with pytest.raises(ValueError, match="incomplete checkpoint family"):
            load_any_checkpoint(family)

    def test_missing_placement_metadata(self, tmp_path):
        save_checkpoint(tmp_path / "old_rank000.npz", MHDState.zeros((3, 4, 5)))
        with pytest.raises(ValueError, match="missing placement metadata"):
            assemble_rank_files(find_rank_files(tmp_path / "old.npz"))

    def test_single_state_archive_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path / "latlon.npz", MHDState.zeros((3, 4, 5)))
        with pytest.raises(ValueError, match="single .lat-lon. state"):
            load_any_checkpoint(path)

    def test_missing_checkpoint_names_both_attempts(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="_rank"):
            load_any_checkpoint(tmp_path / "nothing.npz")

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError, match="no per-rank checkpoint files"):
            assemble_rank_files([])
