import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coords.rotations import (
    rotate_sph_vector_between_panels,
    sph_component_rotation,
    tangential_rotation_angle,
)
from repro.coords.transforms import other_panel_angles

angles = st.tuples(
    st.floats(0.1, np.pi - 0.1), st.floats(-np.pi + 0.02, np.pi - 0.02)
)
vec3 = st.tuples(*[st.floats(-4, 4)] * 3)


class TestRotationMatrix:
    @given(angles)
    def test_orthogonal(self, ang):
        R = sph_component_rotation(*ang)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-10)

    @given(angles)
    def test_radial_component_invariant(self, ang):
        """The r-direction is shared between panels: no radial mixing."""
        R = sph_component_rotation(*ang)
        assert R[0, 0] == pytest.approx(1.0, abs=1e-10)
        np.testing.assert_allclose(R[0, 1:], 0.0, atol=1e-10)
        np.testing.assert_allclose(R[1:, 0], 0.0, atol=1e-10)

    @given(angles)
    def test_tangential_block_is_rotation_like(self, ang):
        R = sph_component_rotation(*ang)
        block = R[1:, 1:]
        assert abs(np.linalg.det(block)) == pytest.approx(1.0, abs=1e-9)

    def test_batch_shapes(self):
        th = np.linspace(0.5, 2.0, 4)
        ph = np.linspace(-1.0, 1.0, 4)
        R = sph_component_rotation(th, ph)
        assert R.shape == (4, 3, 3)


class TestRoundTrip:
    @given(angles, vec3)
    def test_there_and_back(self, ang, v):
        """Rotating to the other panel and back recovers the vector —
        using the destination-frame angles for the return leg."""
        th, ph = ang
        w = rotate_sph_vector_between_panels(*v, th, ph)
        th_o, ph_o = other_panel_angles(th, ph)
        back = rotate_sph_vector_between_panels(
            float(w[0]), float(w[1]), float(w[2]), float(th_o), float(ph_o)
        )
        np.testing.assert_allclose([float(b) for b in back], v, atol=1e-9)

    @given(angles, vec3)
    def test_norm_preserved(self, ang, v):
        w = rotate_sph_vector_between_panels(*v, *ang)
        assert sum(float(c) ** 2 for c in w) == pytest.approx(
            sum(c**2 for c in v), rel=1e-9, abs=1e-12
        )

    @given(angles)
    def test_matrix_matches_function(self, ang):
        R = sph_component_rotation(*ang)
        v = np.array([0.3, -1.2, 2.0])
        w = rotate_sph_vector_between_panels(v[0], v[1], v[2], *ang)
        np.testing.assert_allclose([float(c) for c in w], R @ v, atol=1e-10)


class TestTangentialAngle:
    @given(angles)
    def test_angle_reconstructs_block(self, ang):
        R = sph_component_rotation(*ang)
        alpha = float(tangential_rotation_angle(*ang))
        # |sin| of the mixing angle must match the off-diagonal magnitude
        assert abs(np.sin(alpha)) == pytest.approx(abs(R[2, 1]), abs=1e-9)
