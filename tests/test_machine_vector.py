import pytest

from repro.machine.specs import EARTH_SIMULATOR
from repro.machine.vector import (
    VectorPipeline,
    average_vector_length,
    bank_conflict_factor,
    vector_instruction_count,
    vector_operation_ratio,
)


class TestVectorLength:
    def test_instruction_counts(self):
        assert vector_instruction_count(255) == 1
        assert vector_instruction_count(256) == 1
        assert vector_instruction_count(257) == 2
        assert vector_instruction_count(511) == 2
        assert vector_instruction_count(512) == 2

    def test_average_vector_length_values(self):
        assert average_vector_length(255) == pytest.approx(255.0)
        assert average_vector_length(511) == pytest.approx(255.5)
        assert average_vector_length(512) == pytest.approx(256.0)
        assert average_vector_length(100) == pytest.approx(100.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            vector_instruction_count(0)


class TestBankConflicts:
    def test_paper_choices_avoid_conflicts(self):
        """'The radial grid size is 255 or 511 ... to avoid bank
        conflicts': the model must penalise 256/512, not 255/511."""
        assert bank_conflict_factor(255) == 1.0
        assert bank_conflict_factor(511) == 1.0
        assert bank_conflict_factor(256) > 1.0
        assert bank_conflict_factor(512) > 1.0

    def test_full_way_conflict_worst(self):
        assert bank_conflict_factor(256) > bank_conflict_factor(192)


class TestPipeline:
    @pytest.fixture()
    def pipe(self):
        return VectorPipeline(EARTH_SIMULATOR)

    def test_flagship_avl_calibration(self, pipe):
        """List 1 reports average vector length 251.6 at nr = 511."""
        assert pipe.effective_avl(511) == pytest.approx(251.6, abs=0.5)

    def test_efficiency_in_unit_interval(self, pipe):
        for L in (64, 255, 256, 511):
            assert 0.0 < pipe.vector_efficiency(L) < 1.0

    def test_255_beats_256(self, pipe):
        """The paper's whole point: 255 avoids the conflict penalty."""
        assert pipe.vector_efficiency(255) > pipe.vector_efficiency(256)

    def test_longer_loops_amortise_startup(self, pipe):
        assert pipe.vector_efficiency(511) >= pipe.vector_efficiency(63)

    def test_effective_gflops_below_peak(self, pipe):
        g = pipe.effective_gflops(511)
        assert 0.0 < g < EARTH_SIMULATOR.ap_peak_gflops

    def test_time_for_flops_scales_linearly(self, pipe):
        t1 = pipe.time_for_flops(1e9, 511)
        t2 = pipe.time_for_flops(2e9, 511)
        assert t2 == pytest.approx(2 * t1)

    def test_scalar_fraction_hurts(self, pipe):
        fast = pipe.effective_gflops(511, vector_op_ratio=0.999)
        slow = pipe.effective_gflops(511, vector_op_ratio=0.95)
        assert fast > slow


class TestOperationRatio:
    def test_paper_value(self):
        """'the vector operation ratio is 99%'."""
        assert vector_operation_ratio(511) == pytest.approx(0.99)
