import numpy as np
import pytest

from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.io.catalog import RunCatalog, record_run
from repro.mhd.parameters import MHDParameters


@pytest.fixture()
def catalog(tmp_path):
    return RunCatalog(tmp_path / "run001")


@pytest.fixture(scope="module")
def config():
    return RunConfig(nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
                     dt=1e-3, amp_temperature=1e-2)


class TestManifest:
    def test_round_trip(self, catalog, config):
        catalog.write_manifest(config, note="test run")
        data = catalog.read_manifest()
        assert data["note"] == "test run"
        assert data["config"]["nr"] == 7
        assert data["config"]["magnetic_bc"] == "perfect_conductor"

    def test_missing_manifest(self, catalog):
        with pytest.raises(ValueError, match="manifest"):
            catalog.read_manifest()

    def test_missing_directory_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunCatalog(tmp_path / "nope", create=False)


class TestCheckpoints:
    def test_save_list_load(self, catalog, config):
        dyn = YinYangDynamo(config)
        catalog.save_checkpoint(dyn.state, time=0.0, step=0)
        dyn.run(2, record_every=0)
        catalog.save_checkpoint(dyn.state, time=dyn.time, step=dyn.step_count)
        assert catalog.list_checkpoints() == [0, 2]
        states, t, step = catalog.load_checkpoint()
        assert step == 2
        for a, b in zip(states[Panel.YIN].arrays(), dyn.state[Panel.YIN].arrays()):
            np.testing.assert_array_equal(a, b)

    def test_load_specific_and_missing(self, catalog, config):
        dyn = YinYangDynamo(config)
        catalog.save_checkpoint(dyn.state, time=0.0, step=5)
        _, _, step = catalog.load_checkpoint(5)
        assert step == 5
        with pytest.raises(ValueError, match="no checkpoint for step"):
            catalog.load_checkpoint(7)

    def test_empty_catalog(self, catalog):
        with pytest.raises(ValueError, match="no checkpoints"):
            catalog.load_checkpoint()


class TestRecordRun:
    def test_full_workflow(self, catalog, config):
        dyn = YinYangDynamo(config)
        rec = record_run(dyn, catalog, 6, snapshot_every=3, checkpoint_every=3,
                         record_every=2)
        assert len(rec) == 3
        assert catalog.list_checkpoints() == [3, 6]
        snaps = catalog.list_snapshots()
        assert len(snaps) == 4  # 2 panels x 2 instants
        assert (Panel.YANG, 6) in snaps
        summary = catalog.summary()
        assert summary["has_manifest"] and summary["has_series"]
        assert summary["total_bytes"] > 0

    def test_series_reload(self, catalog, config):
        dyn = YinYangDynamo(config)
        rec = record_run(dyn, catalog, 4, record_every=1)
        back = catalog.load_series()
        np.testing.assert_allclose(back.times, rec.times)
        np.testing.assert_allclose(back.channel("kinetic"), rec.channel("kinetic"))

    def test_snapshot_reload(self, catalog, config):
        dyn = YinYangDynamo(config)
        record_run(dyn, catalog, 2, snapshot_every=2, record_every=0)
        snap = catalog.load_snapshot(Panel.YIN, 2)
        assert snap.step == 2
        assert snap.panel is Panel.YIN
