"""Split-phase overlap (``REPRO_OVERLAP=1``) equivalence and plumbing.

The overlapped schedule — post receives, evaluate the interior RHS,
finish the exchanges, then evaluate the rim — must be *bitwise*
identical to the blocking schedule and hence to the serial solver:
overlap reorders communication against computation, never arithmetic.
These tests pin that equivalence on the thread backend in process, on
the process and socket backends in sanitized child interpreters, and
check the env/CLI plumbing and per-phase timing surfaces around it.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.checkers.fingerprint import assert_bitwise_equal
from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.parallel import backends
from repro.parallel.backends import OVERLAP_ENV, overlap_requested, select_overlap
from repro.parallel.parallel_solver import run_parallel_dynamo


@pytest.fixture(scope="module")
def config():
    return RunConfig(nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
                     dt=1e-3, amp_temperature=1e-2)


@pytest.fixture(scope="module")
def serial_run(config):
    dyn = YinYangDynamo(config)
    for _ in range(4):
        dyn.step()
    return dyn


class TestBitwiseEquivalence:
    """Overlapped == blocking == serial, to the bit, on every layout."""

    @pytest.mark.parametrize("layout", [(1, 2), (2, 1), (2, 2)])
    def test_overlap_matches_blocking_bitwise(self, config, serial_run, layout):
        """Overlapped vs blocking: bitwise on every layout.  Vs serial:
        the seed suite's 1e-12 relative tolerance (multi-rank angular
        tilings reassociate reductions; bitwise serial equality is the
        single-tile guarantee, pinned below and in the sanitized child
        runs)."""
        blocking = run_parallel_dynamo(config, *layout, 4, overlap=False)
        overlapped = run_parallel_dynamo(config, *layout, 4, overlap=True)
        assert not blocking.overlap
        assert overlapped.overlap
        assert_bitwise_equal(overlapped.states, blocking.states,
                             context="overlapped vs blocking")
        for panel in (Panel.YIN, Panel.YANG):
            for (name, a), c in zip(
                overlapped.states[panel].named_arrays(),
                serial_run.state[panel].arrays(),
            ):
                scale = max(1.0, float(np.abs(c).max()))
                assert np.abs(a - c).max() < 1e-12 * scale, (panel, name)

    def test_single_tile_overlap_matches_serial_bitwise(self, config, serial_run):
        par = run_parallel_dynamo(config, 1, 1, 4, overlap=True)
        assert par.overlap
        assert_bitwise_equal(par.states, serial_run.state,
                             context="single-tile overlap vs serial")

    def test_adaptive_dt_matches_blocking_exactly(self, config):
        cfg = RunConfig(nr=7, nth=12, nph=36, params=config.params, dt=None,
                        amp_temperature=1e-2)
        blocking = run_parallel_dynamo(cfg, 2, 2, 3, overlap=False)
        overlapped = run_parallel_dynamo(cfg, 2, 2, 3, overlap=True)
        assert overlapped.dt_history == blocking.dt_history
        assert overlapped.time == blocking.time


_SANITIZED_CODE = (
    "import numpy as np\n"
    "from repro.checkers.contracts import contracts_enabled\n"
    "from repro.checkers.sanitize import sanitize_enabled\n"
    "assert contracts_enabled() and sanitize_enabled()\n"
    "from repro.core import RunConfig, YinYangDynamo\n"
    "from repro.grids.component import Panel\n"
    "from repro.mhd.parameters import MHDParameters\n"
    "from repro.parallel.parallel_solver import run_parallel_dynamo\n"
    "cfg = RunConfig(nr=7, nth=12, nph=36,\n"
    "                params=MHDParameters.laptop_demo(), dt=1e-3,\n"
    "                amp_temperature=1e-2)\n"
    "ser = YinYangDynamo(cfg)\n"
    "for _ in range(2):\n"
    "    ser.step()\n"
    "par = run_parallel_dynamo(cfg, 1, 1, 2, backend='@BACKEND@',\n"
    "                          timeout=240.0)\n"
    "assert par.overlap, 'overlap did not engage'\n"
    "from repro.checkers.fingerprint import assert_bitwise_equal\n"
    "assert_bitwise_equal(par.states, ser.state,\n"
    "                     context='sanitized overlapped run')\n"
    "print('BITWISE_OK')\n"
)


class TestSanitizedChildBackends:
    """Overlapped 2-rank runs on the spawned backends, with contracts
    and the protocol sanitizer armed, still reproduce serial bitwise.
    Overlap is requested via ``REPRO_OVERLAP=1`` so the env path is the
    one exercised end to end."""

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_overlapped_backend_bitwise(self, backend):
        out = subprocess.run(
            [sys.executable, "-c", _SANITIZED_CODE.replace("@BACKEND@", backend)],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": "src", "REPRO_CONTRACTS": "1",
                 "REPRO_SANITIZE": "1", "REPRO_OVERLAP": "1",
                 "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert "BITWISE_OK" in out.stdout, out.stderr


class TestOverlapSelection:
    def test_env_parsing(self, monkeypatch):
        for raw, want in [("", False), ("0", False), ("off", False),
                          ("no", False), ("1", True), ("true", True),
                          ("ON", True), ("yes", True)]:
            monkeypatch.setenv(OVERLAP_ENV, raw)
            assert overlap_requested() is want, raw

    def test_env_garbage_warns_and_stays_off(self, monkeypatch):
        monkeypatch.setenv(OVERLAP_ENV, "maybe")
        with pytest.warns(RuntimeWarning, match="overlap stays off"):
            assert overlap_requested() is False

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(OVERLAP_ENV, "1")
        assert select_overlap("thread", overlap=False) is False
        monkeypatch.delenv(OVERLAP_ENV)
        assert select_overlap("thread", overlap=True) is True

    def test_fallback_warns_without_nonblocking(self, monkeypatch):
        real = backends.probe("thread")
        crippled = backends.LauncherInfo(
            name=real.name,
            available=real.available,
            detail=real.detail,
            capabilities=backends.LauncherCapabilities(
                picklable_fn=real.capabilities.picklable_fn,
                cross_host=real.capabilities.cross_host,
                self_launch=real.capabilities.self_launch,
                max_ranks=real.capabilities.max_ranks,
                nonblocking=False,
            ),
        )
        monkeypatch.setattr(backends, "probe", lambda name: crippled)
        with pytest.warns(RuntimeWarning, match="no non-blocking support"):
            assert select_overlap("thread", overlap=True) is False


class TestPhaseTiming:
    def test_overlapped_result_reports_phases(self, config):
        par = run_parallel_dynamo(config, 1, 2, 2, overlap=True)
        world = 4  # 2 panels x 1 x 2
        assert par.overlap
        assert len(par.rank_comm_seconds) == world
        assert len(par.rank_interior_seconds) == world
        assert len(par.rank_rim_seconds) == world
        assert all(s > 0.0 for s in par.rank_comm_seconds)
        assert all(s > 0.0 for s in par.rank_interior_seconds)
        assert all(s > 0.0 for s in par.rank_rim_seconds)

    def test_blocking_result_books_no_interior(self, config):
        par = run_parallel_dynamo(config, 1, 2, 2, overlap=False)
        assert not par.overlap
        assert all(s == 0.0 for s in par.rank_interior_seconds)
        assert all(s > 0.0 for s in par.rank_comm_seconds)
        assert all(s > 0.0 for s in par.rank_rim_seconds)
