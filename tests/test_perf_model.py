import pytest

from repro.perf.model import PerformanceModel, choose_process_grid
from repro.perf.sweep import TABLE2_MEASURED, run_table2


@pytest.fixture(scope="module")
def rows():
    return run_table2()


class TestProcessGrid:
    def test_tiles_exactly(self):
        pth, pph = choose_process_grid(2048, 514, 1538)
        assert pth * pph == 2048

    def test_prefers_phi_heavy_layouts(self):
        """The panel is 3x wider in phi: more processes along phi."""
        pth, pph = choose_process_grid(2048, 514, 1538)
        assert pph > pth

    def test_prime_counts_fall_back_to_strips(self):
        pth, pph = choose_process_grid(7, 514, 1538)
        assert pth * pph == 7


class TestPredictionBasics:
    def test_efficiency_in_unit_interval(self):
        m = PerformanceModel()
        p = m.predict(511, 514, 1538, 4096)
        assert 0.0 < p.efficiency < 1.0
        assert p.comm_fraction < 1.0

    def test_grid_points_factor_two(self):
        m = PerformanceModel()
        p = m.predict(511, 514, 1538, 4096)
        assert p.grid_points == 511 * 514 * 1538 * 2

    def test_odd_process_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            PerformanceModel().predict(511, 514, 1538, 4095)

    def test_flops_per_gridpoint_rate_matches_table3(self):
        """Table III row: 15.2 TFlops over 8.1e8 points ~ 19K flops/g.p."""
        m = PerformanceModel()
        m.calibrate_kernel_efficiency()
        p = m.predict(511, 514, 1538, 4096)
        assert p.flops_per_gridpoint_rate == pytest.approx(19e3, rel=0.05)


class TestTable2Reproduction:
    """The headline reproduction: the shape of Table II."""

    def test_anchor_point_exact(self, rows):
        anchor = rows[0]
        assert anchor.n_processors == 4096
        assert anchor.model.tflops == pytest.approx(15.2, rel=0.005)
        assert anchor.model.efficiency == pytest.approx(0.46, abs=0.01)

    def test_all_rows_within_a_few_points_of_paper(self, rows):
        for r in rows:
            err = abs(r.model.efficiency - r.paper_efficiency)
            assert err < 0.05, (r.n_processors, r.grid)

    def test_efficiency_rises_with_points_per_processor(self, rows):
        """Within each radial size, fewer processors -> higher
        efficiency (more work to amortise overheads)."""
        by_nr = {}
        for r in rows:
            by_nr.setdefault(r.grid[0], []).append(r)
        for group in by_nr.values():
            group.sort(key=lambda r: r.model.points_per_ap)
            effs = [r.model.efficiency for r in group]
            assert effs == sorted(effs)

    def test_radial_255_below_511_at_same_nproc(self, rows):
        """Table II: at 3888 and 2560 processors the 255-radial grid is
        less efficient than the 511 one."""
        table = {(r.n_processors, r.grid[0]): r.model.efficiency for r in rows}
        assert table[(3888, 255)] < table[(3888, 511)]
        assert table[(2560, 255)] < table[(2560, 511)]

    def test_best_efficiency_at_1200(self, rows):
        best = max(rows, key=lambda r: r.model.efficiency)
        assert best.n_processors == 1200

    def test_communication_near_ten_percent(self, rows):
        """'minimize the communication time (10%)'."""
        anchor = rows[0]
        assert 0.05 < anchor.model.comm_fraction < 0.22

    def test_avl_matches_list1(self, rows):
        assert rows[0].model.avl == pytest.approx(251.6, abs=0.5)

    def test_sustained_tflops_track_paper(self, rows):
        for r in rows:
            assert r.tflops_ratio == pytest.approx(1.0, abs=0.12)

    def test_paper_rows_recorded_verbatim(self):
        flag = TABLE2_MEASURED[0]
        assert flag == (4096, (511, 514, 1538), 15.2, 0.46)
        assert len(TABLE2_MEASURED) == 6


class TestCalibration:
    def test_calibration_is_stable(self):
        m = PerformanceModel()
        k1 = m.calibrate_kernel_efficiency()
        k2 = m.calibrate_kernel_efficiency()
        assert k1 == pytest.approx(k2, rel=1e-6)
        assert 0.3 < k1 <= 1.0

    def test_format_helpers(self, rows):
        from repro.perf.sweep import format_table2

        text = format_table2(rows)
        assert "4096" in text and "15.20" in text
