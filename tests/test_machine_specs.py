import pytest

from repro.machine.specs import EARTH_SIMULATOR, EarthSimulatorSpec


class TestTableI:
    """Every row of Table I must be reproduced by the spec object."""

    def test_total_aps(self):
        assert EARTH_SIMULATOR.total_aps == 5120

    def test_total_peak(self):
        assert EARTH_SIMULATOR.total_peak_tflops == pytest.approx(40.96)

    def test_row_values(self):
        rows = dict(EARTH_SIMULATOR.table_rows())
        assert rows["Peak performance of arithmetic processor (AP)"] == "8 Gflops"
        assert rows["Number of AP in a processor node (PN)"] == "8"
        assert rows["Total number of PN"] == "640"
        assert rows["Shared memory size of PN"] == "16 GB"
        assert rows["Total main memory"] == "10 TB"
        assert rows["Inter-node data transfer rate"] == "12.3 GB/s x 2"
        assert "5120" in rows["Total number of AP"]

    def test_paper_peak_for_4096(self):
        """'the theoretical peak performance of 4096 processors is
        4096 x 8 Gflops = 32.8 Tflops'."""
        assert EARTH_SIMULATOR.peak_tflops(4096) == pytest.approx(32.768)

    def test_nodes_for_flat_mpi(self):
        """4096 processes = 512 nodes; 3888 = 486 nodes."""
        assert EARTH_SIMULATOR.nodes_for(4096) == 512
        assert EARTH_SIMULATOR.nodes_for(3888) == 486
        assert EARTH_SIMULATOR.nodes_for(1200) == 150

    def test_peak_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            EARTH_SIMULATOR.peak_tflops(6000)

    def test_validation(self):
        with pytest.raises(ValueError):
            EarthSimulatorSpec(ap_peak_gflops=0.0)
