import numpy as np
import pytest

from repro.analysis.reversals import (
    PolarityChron,
    detect_reversals,
    polarity_fractions,
    reversal_rate,
    synthetic_reversing_dipole,
)


class TestDetectReversals:
    def test_clean_square_wave(self):
        t = np.linspace(0, 1, 1000)
        d = np.where(t < 0.5, 1.0, -1.0)
        reversals, chrons = detect_reversals(t, d)
        assert len(reversals) == 1
        assert reversals[0] == pytest.approx(0.5, abs=0.01)
        assert [c.polarity for c in chrons] == [1, -1]

    def test_no_reversal_in_steady_series(self):
        t = np.linspace(0, 1, 100)
        reversals, chrons = detect_reversals(t, np.ones(100))
        assert reversals == []
        assert len(chrons) == 1 and chrons[0].polarity == 1

    def test_excursion_not_counted(self):
        """A dip toward zero that recovers is not a reversal."""
        t = np.linspace(0, 1, 1000)
        d = np.ones(1000)
        d[400:450] = 0.05  # excursion within the hysteresis band
        reversals, _ = detect_reversals(t, d, hysteresis_frac=0.25)
        assert reversals == []

    def test_noise_does_not_shower(self):
        """Noisy but single-flip series yields exactly one reversal."""
        t, d = synthetic_reversing_dipole(2000, 1, noise=0.2, seed=3)
        reversals, _ = detect_reversals(t, d)
        assert len(reversals) == 1

    def test_synthetic_counts_recovered(self):
        for n_rev in (0, 2, 5):
            t, d = synthetic_reversing_dipole(4000, n_rev, noise=0.1, seed=n_rev)
            reversals, chrons = detect_reversals(t, d)
            assert len(reversals) == n_rev
            assert len(chrons) == n_rev + 1

    def test_polarities_alternate(self):
        t, d = synthetic_reversing_dipole(3000, 4, seed=9)
        _, chrons = detect_reversals(t, d)
        signs = [c.polarity for c in chrons]
        assert all(a == -b for a, b in zip(signs, signs[1:]))

    def test_zero_series(self):
        t = np.linspace(0, 1, 50)
        reversals, chrons = detect_reversals(t, np.zeros(50))
        assert reversals == [] and chrons == []

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_reversals(np.array([1.0, 0.5]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            detect_reversals(np.array([0.0]), np.array([1.0]))


class TestStatistics:
    def test_polarity_fractions(self):
        chrons = [
            PolarityChron(0.0, 0.75, +1),
            PolarityChron(0.75, 1.0, -1),
        ]
        normal, reversed_ = polarity_fractions(chrons)
        assert normal == pytest.approx(0.75)
        assert reversed_ == pytest.approx(0.25)

    def test_fractions_empty(self):
        assert polarity_fractions([]) == (0.0, 0.0)

    def test_reversal_rate(self):
        assert reversal_rate([0.1, 0.5, 0.9], 2.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            reversal_rate([], 0.0)

    def test_chron_duration(self):
        assert PolarityChron(1.0, 3.5, -1).duration == pytest.approx(2.5)
