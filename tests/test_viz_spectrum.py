import numpy as np
import pytest

from repro.grids.yinyang import YinYangGrid
from repro.viz.columns import synthetic_columns
from repro.viz.spectrum import (
    azimuthal_spectrum,
    dominant_mode,
    spectral_slope,
    vorticity_mode_spectrum,
)


class TestSpectrum:
    def test_single_mode(self):
        phi = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        power = azimuthal_spectrum(3.0 * np.sin(5 * phi))
        assert np.argmax(power) == 5
        # Parseval: sum of power = mean square
        assert power.sum() == pytest.approx(np.mean((3.0 * np.sin(5 * phi)) ** 2))

    def test_mean_goes_to_m0(self):
        power = azimuthal_spectrum(np.full(64, 2.0))
        assert power[0] == pytest.approx(4.0)
        assert power[1:].max() < 1e-20

    def test_parseval_random(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=256)
        power = azimuthal_spectrum(w)
        assert power.sum() == pytest.approx(np.mean(w**2), rel=1e-10)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            azimuthal_spectrum(np.zeros((4, 4)))


class TestDominantMode:
    def test_ignores_mean(self):
        phi = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        w = 10.0 + 0.5 * np.sin(7 * phi)
        assert dominant_mode(w) == 7

    def test_m_min_respected(self):
        phi = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        w = 5.0 * np.sin(2 * phi) + 1.0 * np.sin(9 * phi)
        assert dominant_mode(w, m_min=3) == 9


class TestVorticitySpectrum:
    def test_matches_column_census(self):
        """Fourier and physical-space column counts must agree on the
        manufactured columnar flow."""
        grid = YinYangGrid(9, 20, 58)
        states = synthetic_columns(grid, m=6)
        power, m = vorticity_mode_spectrum(grid, states, nphi=256)
        assert m == 6
        assert power[6] > 10 * np.delete(power[1:], 5).max()


class TestSlope:
    def test_power_law_recovered(self):
        m = np.arange(64, dtype=float)
        power = np.zeros(64)
        power[1:] = m[1:] ** -3.0
        assert spectral_slope(power, 2, 30) == pytest.approx(-3.0, abs=1e-10)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            spectral_slope(np.ones(10), 5, 5)
        with pytest.raises(ValueError):
            spectral_slope(np.zeros(10), 1, 5)
