"""Runtime sanitizers under ``REPRO_SANITIZE=1``: buffer poisoning,
write-after-move, and the message-protocol recorder.

The parallel programs here are module-level so the process-backend
smoke can pickle them under the ``spawn`` start method.
"""

import numpy as np
import pytest

from repro.checkers.sanitize import (
    DoubleRelease,
    ProtocolRecorder,
    ProtocolViolation,
    last_protocol_report,
    sanitize_enabled,
)
from repro.fd.kernels import BufferPool
from repro.parallel.simmpi import SimMPI


@pytest.fixture
def sanitize(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


class TestEnabledFlag:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "False"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()


class TestBufferPool:
    def test_double_release_raises(self, sanitize):
        pool = BufferPool()
        buf = pool.take((4,))
        pool.give(buf)
        with pytest.raises(DoubleRelease):
            pool.give(buf)

    def test_release_poisons_with_nan(self, sanitize):
        pool = BufferPool()
        buf = pool.take((8,))
        buf[:] = 3.0
        pool.give(buf)
        assert np.isnan(buf).all()

    def test_take_after_give_clears_free_mark(self, sanitize):
        pool = BufferPool()
        buf = pool.take((4,))
        pool.give(buf)
        again = pool.take((4,))
        assert again is buf
        pool.give(again)  # legal: it was re-taken in between

    def test_unsanitized_pool_neither_raises_nor_poisons(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        pool = BufferPool()
        buf = pool.take((4,))
        buf[:] = 3.0
        pool.give(buf)
        pool.give(buf)  # tolerated (legacy behaviour)
        assert (buf == 3.0).all()


class TestWriteAfterMove:
    def test_write_after_move_raises_immediately(self, sanitize):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.Send(buf, dest=1, tag=0, move=True)
                buf[0] = 2.0  # the race the sanitizer must catch
            else:
                comm.Recv(source=0, tag=0)

        with pytest.raises(ValueError, match="read-only"):
            SimMPI.run(2, prog)

    def test_receiver_can_read_moved_payload(self, sanitize):
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(4, dtype=np.float64)
                comm.Send(buf, dest=1, tag=0, move=True)
                return None
            return float(comm.Recv(source=0, tag=0).sum())

        assert SimMPI.run(2, prog)[1] == 6.0

    def test_moved_buffer_stays_writable_without_sanitize(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)

        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.Send(buf, dest=1, tag=0, move=True)
                return bool(buf.flags.writeable)
            comm.Recv(source=0, tag=0)
            return True

        assert all(SimMPI.run(2, prog))


class TestProtocolRecorder:
    def test_unmatched_send_raises_at_finalize(self, sanitize):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(1.0, dest=1, tag=3)
            # rank 1 never receives

        with pytest.raises(ProtocolViolation, match="unmatched send"):
            SimMPI.run(2, prog)
        report = last_protocol_report()
        assert not report.ok
        assert report.unmatched_sends == [
            {"comm": "world", "source": 0, "dest": 1, "tag": 3, "count": 1}
        ]

    def test_tag_collision_between_distinct_sites(self, sanitize):
        def prog(comm):
            if comm.rank == 0:
                comm.Send("stream-a", dest=1, tag=7)
                comm.Send("stream-b", dest=1, tag=7)  # different line, same tag
            else:
                comm.Recv(source=0, tag=7)
                comm.Recv(source=0, tag=7)

        with pytest.raises(ProtocolViolation, match="tag collision"):
            SimMPI.run(2, prog)
        report = last_protocol_report()
        assert len(report.tag_collisions) == 1
        assert len(report.tag_collisions[0]["sites"]) == 2

    def test_same_site_burst_is_a_legal_fifo_stream(self, sanitize):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.Send(k, dest=1, tag=9)
                return None
            return [comm.Recv(source=0, tag=9) for _ in range(5)]

        assert SimMPI.run(2, prog)[1] == list(range(5))
        assert last_protocol_report().ok

    def test_collective_sequence_divergence(self, sanitize):
        def prog(comm):
            # same rendezvous footprint, different collective: the
            # run completes but the recorded sequences disagree
            if comm.rank == 0:
                comm.bcast("x", root=0)
            else:
                comm.barrier()

        with pytest.raises(ProtocolViolation, match="collective divergence"):
            SimMPI.run(2, prog)
        report = last_protocol_report()
        assert report.collective_mismatches[0]["comm"] == "world"

    def test_clean_program_reports_ok(self, sanitize):
        def prog(comm):
            other = 1 - comm.rank
            comm.Send(comm.rank, dest=other, tag=1)
            got = comm.Recv(source=other, tag=1)
            return got + comm.allreduce(1)

        assert SimMPI.run(2, prog) == [3, 2]
        report = last_protocol_report()
        assert report.ok
        assert report.n_sends == 2 and report.n_recvs == 2
        assert report.n_collectives >= 2
        assert "clean" in report.summary()

    def test_merged_snapshots_equal_direct_report(self):
        a, b = ProtocolRecorder(), ProtocolRecorder()
        a.note_send("world", 0, 1, 5)
        b.note_recv("world", 0, 1, 5)
        a.note_collective("world", 0, "barrier")
        b.note_collective("world", 1, "bcast")
        merged = ProtocolRecorder.merged([a.snapshot(), b.snapshot()])
        report = merged.report()
        assert report.n_sends == 1 and report.n_recvs == 1
        assert not report.unmatched_sends
        assert len(report.collective_mismatches) == 1


def _sanitized_smoke_prog(comm):
    """Process-backend smoke: packed-style move send + collectives."""
    other = 1 - comm.rank
    buf = np.empty((3, 4))
    buf[:] = float(comm.rank)
    comm.Send(buf, dest=other, tag=2, move=True)
    got = comm.Recv(source=other, tag=2)
    total = comm.allreduce(float(got.sum()))
    comm.barrier()
    return total


def _sanitized_unmatched_prog(comm):
    if comm.rank == 0:
        comm.Send(1.0, dest=1, tag=3)
    comm.barrier()


class TestProcessBackend:
    def test_sanitized_process_world_runs_clean(self, sanitize):
        out = SimMPI.run(2, _sanitized_smoke_prog, backend="process")
        assert out == [12.0, 12.0]

    def test_process_world_reports_unmatched_send(self, sanitize):
        with pytest.raises(ProtocolViolation, match="unmatched send"):
            SimMPI.run(2, _sanitized_unmatched_prog, backend="process")


class TestBitwiseEquivalence:
    def test_two_rank_solver_bitwise_equals_serial(self, sanitize):
        """The acceptance bar: sanitizers change nothing observable —
        the 2-rank parallel dynamo reproduces serial floats exactly."""
        from repro.core import RunConfig, YinYangDynamo
        from repro.grids.component import Panel
        from repro.mhd.parameters import MHDParameters
        from repro.parallel.parallel_solver import run_parallel_dynamo

        cfg = RunConfig(nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
                        dt=1e-3, amp_temperature=1e-2)
        ser = YinYangDynamo(cfg)
        for _ in range(3):
            ser.step()
        par = run_parallel_dynamo(cfg, 1, 2, 3)
        assert last_protocol_report().ok
        from repro.checkers.fingerprint import assert_bitwise_equal

        assert_bitwise_equal(par.states, ser.state,
                             context="sanitized parallel vs serial")
