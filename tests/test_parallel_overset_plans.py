"""Overset communication plans on asymmetric decompositions.

The plan — which donor rank ships which columns to which receptor rank
— is a pure function of (grid, decomposition), built redundantly on
every rank.  These tests pin that determinism down on layouts where
``pth != pph`` and on single-rank panels, and check the packed
state-batched exchange against the serial interpolator.
"""

import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid
from repro.parallel.decomposition import PanelDecomposition
from repro.parallel.overset_comm import OversetExchanger, _build_direction
from repro.parallel.simmpi import SimMPI

ASYMMETRIC_LAYOUTS = [(1, 3), (3, 1), (2, 3), (1, 1)]


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(5, 14, 40)


def _plan_signature(plans):
    """Deterministic, comparable rendering of a rank's direction plans."""
    sig = {}
    for direction, (donor, receptor) in plans.items():
        d = None
        if donor is not None:
            d = {r: (t[0].tolist(), t[1].tolist())
                 for r, t in sorted(donor.targets.items())}
        r_ = None
        if receptor is not None:
            r_ = {
                "n_loc": receptor.n_loc,
                "ring": (receptor.ring_lith.tolist(), receptor.ring_liph.tolist()),
                "sources": {s: (v[0].tolist(), v[1].tolist())
                            for s, v in sorted(receptor.sources.items())},
            }
        sig[direction] = (d, r_)
    return sig


class TestPlanDeterminism:
    @pytest.mark.parametrize("layout", ASYMMETRIC_LAYOUTS)
    def test_plans_identical_on_every_rank(self, grid, layout):
        """Any rank rebuilding another rank's plan must get the same
        answer — the property the distributed build relies on."""
        pth, pph = layout
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, pth, pph)
        nper = decomp.nranks

        def prog(world):
            panel_index = 0 if world.rank < nper else 1
            pc = world.split(color=panel_index, key=world.rank)
            ex = OversetExchanger(grid, decomp, world, panel_index, pc.rank)
            # every rank also recomputes rank 0's Yin-side plan; all
            # worlds must agree bit-for-bit with the reference below
            ref = _build_direction(
                grid.to_yang, decomp, 0, decomp.subdomain(0),
                i_am_donor=True, i_am_receptor=False,
            )
            return world.rank, _plan_signature(ex.plans), _plan_signature({1: ref})

        def expected_plans(panel_index, panel_rank):
            sub = decomp.subdomain(panel_rank)
            plans = {}
            for receptor_panel, interp in ((1, grid.to_yang), (0, grid.to_yin)):
                donor_panel = 1 - receptor_panel
                plans[receptor_panel] = _build_direction(
                    interp, decomp, panel_rank, sub,
                    i_am_donor=(panel_index == donor_panel),
                    i_am_receptor=(panel_index == receptor_panel),
                )
            return plans

        results = SimMPI.run(2 * nper, prog)
        rank0_views = []
        for rank, sig, rank0_view in results:
            rank0_views.append(rank0_view)
            panel_index = 0 if rank < nper else 1
            panel_rank = rank if panel_index == 0 else rank - nper
            # the plan the rank built in-world equals a from-scratch
            # serial rebuild: nothing rank-local leaked in
            assert sig == _plan_signature(expected_plans(panel_index, panel_rank))
        # every rank recomputed rank 0's donor plan identically
        assert all(v == rank0_views[0] for v in rank0_views)

    @pytest.mark.parametrize("layout", ASYMMETRIC_LAYOUTS)
    def test_donor_and_receptor_plans_pair_up(self, grid, layout):
        """Donor rank d's message for receptor r has exactly the length
        receptor r expects from donor d, in both directions."""
        pth, pph = layout
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, pth, pph)
        for interp in (grid.to_yang, grid.to_yin):
            donors = {}
            receptors = {}
            for rank in range(decomp.nranks):
                donor, receptor = _build_direction(
                    interp, decomp, rank, decomp.subdomain(rank),
                    i_am_donor=True, i_am_receptor=True,
                )
                donors[rank] = donor
                receptors[rank] = receptor
            pairs_sent = {(d, r): len(t[0])
                          for d, donor in donors.items()
                          for r, t in donor.targets.items()}
            pairs_expected = {(d, r): len(v[0])
                              for r, receptor in receptors.items()
                              for d, v in receptor.sources.items()}
            assert pairs_sent == pairs_expected
            # every ring point of the receptor panel gets all 4 corners
            total = sum(pairs_sent.values())
            assert total == 4 * interp.ring_ith.size

    @pytest.mark.parametrize("layout", [(1, 3), (3, 1)])
    def test_round_trip_matches_serial(self, grid, layout):
        """Asymmetric-layout exchange reproduces the serial interpolator
        bitwise on the owned points (packed path, the default)."""
        pth, pph = layout
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, pth, pph)
        nper = decomp.nranks
        f = grid.sample_scalar(lambda r, th, ph: np.cos(th) * np.sin(2 * ph) + r)
        serial = {p: f[p].copy() for p in f}
        grid.apply_overset_scalar(serial[Panel.YIN], serial[Panel.YANG])

        def prog(world):
            panel_index = 0 if world.rank < nper else 1
            panel = Panel.YIN if panel_index == 0 else Panel.YANG
            pc = world.split(color=panel_index, key=world.rank)
            sub = decomp.subdomain(pc.rank)
            ex = OversetExchanger(grid, decomp, world, panel_index, pc.rank)
            sl = sub.local_extent_global()
            local = np.ascontiguousarray(f[panel][:, sl[0], sl[1]])
            ex.exchange_scalar(local)
            return panel, sub, local

        for panel, sub, local in SimMPI.run(2 * nper, prog):
            sl = sub.global_slices()
            oth, oph = sub.owned_local()
            np.testing.assert_array_equal(
                local[:, oth, oph], serial[panel][:, sl[0], sl[1]]
            )


class TestStateBatchedExchange:
    def test_exchange_state_matches_separate_exchanges(self, grid):
        """One packed 8-field message per pair == the four historical
        scalar/vector exchanges, bit for bit."""
        rng = np.random.default_rng(7)
        nfields = 8
        fields = {
            p: [rng.normal(size=grid.shape) for _ in range(nfields)]
            for p in (Panel.YIN, Panel.YANG)
        }
        serial = {p: [f.copy() for f in fields[p]] for p in fields}
        grid.apply_overset_scalar(serial[Panel.YIN][0], serial[Panel.YANG][0])
        grid.apply_overset_vector(serial[Panel.YIN][1:4], serial[Panel.YANG][1:4])
        grid.apply_overset_scalar(serial[Panel.YIN][4], serial[Panel.YANG][4])
        grid.apply_overset_vector(serial[Panel.YIN][5:8], serial[Panel.YANG][5:8])

        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, 1, 2)
        nper = decomp.nranks

        def prog(world):
            panel_index = 0 if world.rank < nper else 1
            panel = Panel.YIN if panel_index == 0 else Panel.YANG
            pc = world.split(color=panel_index, key=world.rank)
            sub = decomp.subdomain(pc.rank)
            ex = OversetExchanger(grid, decomp, world, panel_index, pc.rank)
            sl = sub.local_extent_global()
            local = [np.ascontiguousarray(f[:, sl[0], sl[1]])
                     for f in fields[panel]]
            ex.exchange_state(local)
            return panel, sub, local

        for panel, sub, local in SimMPI.run(2 * nper, prog):
            sl = sub.global_slices()
            oth, oph = sub.owned_local()
            for k in range(nfields):
                np.testing.assert_array_equal(
                    local[k][:, oth, oph], serial[panel][k][:, sl[0], sl[1]],
                    err_msg=f"field {k} panel {panel}",
                )
