"""Socket-backed SimMPI: wire-format validation, hostile peers, worlds.

The frame codec is exercised directly with corrupt byte streams; the
coordinator/worker protocol with in-process loopback worlds (threads
running :func:`worker_join` against a non-spawning coordinator) and
with real spawned worker processes.  Every rank function is
module-level — the ASSIGN frame pickles it to the workers.
"""

import contextlib
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.checkers.sanitize import ProtocolViolation
from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.parallel.frames import (
    MAGIC,
    MAX_HEADER_BYTES,
    encode_frame,
    read_frame,
    validate_payload,
)
from repro.parallel.parallel_solver import run_parallel_dynamo
from repro.parallel.simmpi import SimMPI, SimMPIError
from repro.parallel.sockmpi import (
    SockMPI,
    SockWorkerError,
    _recv_exactly_fn,
    worker_join,
)

_PREFIX = struct.Struct("<IBI")
_PLEN = struct.Struct("<Q")


def _buffer_reader(blob: bytes):
    """``recv_exactly`` over a byte buffer (a peer that then hangs up)."""
    view = memoryview(blob)
    pos = 0

    def recv_exactly(n: int) -> bytes:
        nonlocal pos
        if pos + n > len(view):
            raise ProtocolViolation(
                f"connection closed after {len(view) - pos}/{n} B of a frame"
            )
        out = bytes(view[pos:pos + n])
        pos += n
        return out

    return recv_exactly


def _frame_bytes(payload, chan="d", source=0, dest=1, tag=3) -> bytes:
    head, body = encode_frame(chan, source, dest, tag, payload)
    return head + bytes(body)


class TestFrameCodec:
    def test_ndarray_roundtrip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        frame = read_frame(_buffer_reader(_frame_bytes(arr)))
        assert (frame.chan, frame.source, frame.dest, frame.tag) == ("d", 0, 1, 3)
        np.testing.assert_array_equal(frame.materialise(), arr)

    def test_pickle_roundtrip(self):
        frame = read_frame(_buffer_reader(_frame_bytes({"k": [1, 2]})))
        assert frame.materialise() == {"k": [1, 2]}

    def test_router_head_is_verbatim(self):
        blob = _frame_bytes(np.ones(4))
        frame = read_frame(_buffer_reader(blob))
        assert frame.head + frame.payload == blob

    def test_truncated_stream(self):
        blob = _frame_bytes(np.ones(8))
        for cut in (3, _PREFIX.size + 2, len(blob) - 5):
            with pytest.raises(ProtocolViolation, match="connection closed"):
                read_frame(_buffer_reader(blob[:cut]))

    def test_bad_magic(self):
        blob = bytearray(_frame_bytes(np.ones(2)))
        blob[0] ^= 0xFF
        with pytest.raises(ProtocolViolation, match="bad frame magic"):
            read_frame(_buffer_reader(bytes(blob)))

    def test_unknown_kind(self):
        blob = _PREFIX.pack(MAGIC, 9, 4) + b"xxxx" + _PLEN.pack(0)
        with pytest.raises(ProtocolViolation, match="unknown frame kind"):
            read_frame(_buffer_reader(blob))

    def test_header_cap(self):
        blob = _PREFIX.pack(MAGIC, 1, MAX_HEADER_BYTES + 1)
        with pytest.raises(ProtocolViolation, match="exceeds the"):
            read_frame(_buffer_reader(blob))

    def test_undecodable_header(self):
        header = b"\x00not a pickle"
        blob = _PREFIX.pack(MAGIC, 1, len(header)) + header + _PLEN.pack(0)
        with pytest.raises(ProtocolViolation, match="undecodable frame header"):
            read_frame(_buffer_reader(blob))

    def test_header_wrong_arity(self):
        header = pickle.dumps(("d", 0, 1))
        blob = _PREFIX.pack(MAGIC, 1, len(header)) + header + _PLEN.pack(0)
        with pytest.raises(ProtocolViolation, match="not a 6-tuple"):
            read_frame(_buffer_reader(blob))

    def test_header_wrong_field_types(self):
        header = pickle.dumps(("d", "zero", 1, 3, None, None))
        blob = _PREFIX.pack(MAGIC, 1, len(header)) + header + _PLEN.pack(0)
        with pytest.raises(ProtocolViolation, match="field types invalid"):
            read_frame(_buffer_reader(blob))

    def test_ndarray_shape_disagrees_with_byte_count(self):
        # header claims a 3x3 float64 block (72 B) but carries 8 B
        header = pickle.dumps(("d", 0, 1, 3, "<f8", (3, 3)))
        blob = (_PREFIX.pack(MAGIC, 0, len(header)) + header
                + _PLEN.pack(8) + b"\x00" * 8)
        with pytest.raises(ProtocolViolation, match="claims shape"):
            read_frame(_buffer_reader(blob))

    def test_ndarray_negative_shape(self):
        header = pickle.dumps(("d", 0, 1, 3, "<f8", (-1, 3)))
        blob = _PREFIX.pack(MAGIC, 0, len(header)) + header + _PLEN.pack(0)
        with pytest.raises(ProtocolViolation, match="invalid shape"):
            read_frame(_buffer_reader(blob))

    def test_validate_payload_mismatches(self):
        good = np.zeros((2, 3))
        assert validate_payload(good, (2, 3), np.float64,
                                what="halo", plan="plan") is good
        for bad in (np.zeros((3, 2)), np.zeros((2, 3), dtype=np.float32), "junk"):
            with pytest.raises(ProtocolViolation, match="expects"):
                validate_payload(bad, (2, 3), np.float64,
                                 what="halo", plan="plan")

    def test_truncated_socket_stream(self):
        """The real socket reader reports truncation, not a hang."""
        a, b = socket.socketpair()
        try:
            blob = _frame_bytes(np.ones(16))
            a.sendall(blob[:11])
            a.close()
            b.settimeout(10.0)
            with pytest.raises(ProtocolViolation, match="connection closed"):
                read_frame(_recv_exactly_fn(b, "test peer"))
        finally:
            b.close()
            with contextlib.suppress(OSError):
                a.close()


# ---- loopback worlds ---------------------------------------------------------------


def _pair_prog(comm):
    other = 1 - comm.rank
    comm.Send(np.arange(6, dtype=np.float64) * (comm.rank + 1), dest=other)
    got = comm.Recv(source=other)
    red = comm.allreduce(float(comm.rank + 1), op=lambda a, b: a + b)
    return got.tolist(), red


def _collective_prog(comm):
    gathered = comm.allgather(comm.rank * 10)
    root_val = comm.bcast("payload" if comm.rank == 0 else None, root=0)
    sub = comm.split(color=comm.rank % 2, key=comm.rank)
    sub_sum = sub.allreduce(1, op=lambda a, b: a + b)
    comm.barrier()
    return gathered, root_val, sub_sum


def _failing_prog(comm):
    if comm.rank == 1:
        raise ValueError("deliberate rank failure")
    comm.barrier()
    return comm.rank


def _dying_prog(comm):
    if comm.rank == 1:
        os._exit(1)  # simulate a worker host dropping off the network
    comm.Recv(source=1, tag=5)  # never arrives


def _quiet_worker(addr: str) -> None:
    with contextlib.suppress(BaseException):
        worker_join(addr, timeout=60.0)


def _threaded_world(nprocs, fn, *, before_workers=None, timeout=60.0):
    """A full coordinator + worker world inside this process: the
    coordinator runs in a thread with ``spawn=False`` and each worker
    is a thread calling :func:`worker_join` on the announced address."""
    addr_box: dict[str, str] = {}
    announced = threading.Event()

    def announce(addr: str) -> None:
        addr_box["addr"] = addr
        announced.set()

    launcher = SockMPI(spawn=False, announce=announce)
    out: dict[str, object] = {}

    def coordinate() -> None:
        try:
            out["results"] = launcher.run(nprocs, fn, timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            out["error"] = exc

    coord = threading.Thread(target=coordinate, daemon=True)
    coord.start()
    assert announced.wait(30.0), "coordinator never announced its address"
    addr = addr_box["addr"]
    if before_workers is not None:
        before_workers(addr)
    workers = [
        threading.Thread(target=_quiet_worker, args=(addr,), daemon=True)
        for _ in range(nprocs)
    ]
    for w in workers:
        w.start()
    coord.join(timeout=120.0)
    assert not coord.is_alive(), "coordinator did not finish"
    if "error" in out:
        raise out["error"]
    return out["results"]


class TestLoopbackWorld:
    def test_p2p_and_reduction(self):
        results = _threaded_world(2, _pair_prog)
        assert results == [
            ([2.0 * i for i in range(6)], 3.0),
            ([float(i) for i in range(6)], 3.0),
        ]

    def test_collectives_and_split(self):
        results = _threaded_world(4, _collective_prog)
        for rank, (gathered, root_val, sub_sum) in enumerate(results):
            assert gathered == [0, 10, 20, 30], rank
            assert root_val == "payload"
            assert sub_sum == 2

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="deliberate rank failure"):
            _threaded_world(2, _failing_prog)

    def test_garbage_handshake_does_not_kill_world(self):
        """Clients speaking HTTP (or nothing at all) are refused; the
        real workers still form the world and finish."""

        def hostile_clients(addr: str) -> None:
            host, port = addr.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10.0) as s:
                s.sendall(b"GET / HTTP/1.0\r\n\r\n")
            with socket.create_connection((host, int(port)), timeout=10.0):
                pass  # connect and hang up without a word

        results = _threaded_world(2, _pair_prog, before_workers=hostile_clients)
        assert results[0] == ([2.0 * i for i in range(6)], 3.0)


class TestSpawnedWorld:
    def test_matches_thread_backend(self):
        sock = SockMPI().run(2, _pair_prog, timeout=120.0)
        thread = SimMPI.run(2, _pair_prog, timeout=60.0)
        assert sock == thread

    def test_mid_run_disconnect_aborts_cleanly(self):
        """A worker dying mid-run (hard exit, no RESULT) must surface as
        a protocol failure on the coordinator — with the surviving rank
        released by the ABORT broadcast, not deadlocked in Recv."""
        with pytest.raises((ProtocolViolation, SockWorkerError),
                           match="connection failed mid-run|rank 1"):
            SockMPI().run(2, _dying_prog, timeout=30.0)

    def test_is_simmpi_error_family(self):
        assert issubclass(SockWorkerError, SimMPIError)


class TestSocketDynamo:
    def test_socket_dynamo_matches_serial_bitwise(self):
        cfg = RunConfig(nr=7, nth=12, nph=36,
                        params=MHDParameters.laptop_demo(), dt=1e-3,
                        amp_temperature=1e-2)
        ser = YinYangDynamo(cfg)
        for _ in range(3):
            ser.step()
        par = run_parallel_dynamo(cfg, 1, 1, 3, backend="socket", timeout=240.0)
        assert par.launcher_backend == "socket"
        assert par.steps == 3
        for panel in (Panel.YIN, Panel.YANG):
            for (name, a), b in zip(
                par.states[panel].named_arrays(), ser.state[panel].arrays()
            ):
                np.testing.assert_array_equal(a, b, err_msg=f"{panel} {name}")

    def test_contracts_and_sanitizers_socket_bitwise(self):
        """The loopback socket world under ``REPRO_CONTRACTS=1
        REPRO_SANITIZE=1`` must reproduce the serial solver bitwise —
        the sanitizer's protocol verification runs over the socket
        transport itself.  Contracts arm at import, hence the child
        interpreter."""
        code = (
            "import numpy as np\n"
            "from repro.checkers.contracts import contracts_enabled\n"
            "from repro.checkers.sanitize import sanitize_enabled\n"
            "assert contracts_enabled() and sanitize_enabled()\n"
            "from repro.core import RunConfig, YinYangDynamo\n"
            "from repro.grids.component import Panel\n"
            "from repro.mhd.parameters import MHDParameters\n"
            "from repro.parallel.parallel_solver import run_parallel_dynamo\n"
            "cfg = RunConfig(nr=7, nth=12, nph=36,\n"
            "                params=MHDParameters.laptop_demo(), dt=1e-3,\n"
            "                amp_temperature=1e-2)\n"
            "ser = YinYangDynamo(cfg)\n"
            "for _ in range(2):\n"
            "    ser.step()\n"
            "par = run_parallel_dynamo(cfg, 1, 1, 2, backend='socket')\n"
            "assert par.launcher_backend == 'socket'\n"
            "for panel in (Panel.YIN, Panel.YANG):\n"
            "    for (name, a), b in zip(par.states[panel].named_arrays(),\n"
            "                            ser.state[panel].arrays()):\n"
            "        np.testing.assert_array_equal(a, b,\n"
            "                                      err_msg=f'{panel} {name}')\n"
            "print('SOCKET_BITWISE_OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": "src", "REPRO_CONTRACTS": "1",
                 "REPRO_SANITIZE": "1", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert "SOCKET_BITWISE_OK" in out.stdout, out.stderr
