import pytest

from repro.utils.validation import (
    check_in_range,
    check_odd,
    check_positive,
    check_type,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestCheckPositive:
    def test_returns_value(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-300])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", bad)


class TestCheckInRange:
    def test_inclusive_bounds_ok(self):
        assert check_in_range("y", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("y", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError):
            check_in_range("y", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="y must satisfy"):
            check_in_range("y", 3.0, 1.0, 2.0)


class TestCheckOdd:
    def test_accepts_odd(self):
        assert check_odd("n", 7) == 7

    @pytest.mark.parametrize("bad", [0, -3, 4])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_odd("n", bad)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_odd("n", True)
        with pytest.raises(TypeError):
            check_odd("n", 3.0)


class TestCheckType:
    def test_accepts(self):
        assert check_type("s", "abc", str) == "abc"

    def test_rejects(self):
        with pytest.raises(TypeError, match="s must be str"):
            check_type("s", 3, str)
