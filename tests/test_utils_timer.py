import time

import pytest

from repro.utils.timer import Timer, TimerRegistry


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt > 0.0
        assert t.total == pytest.approx(dt)
        assert t.count == 1

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_mean_of_zero_intervals(self):
        assert Timer().mean == 0.0

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestTimerRegistry:
    def test_context_manager_times(self):
        reg = TimerRegistry()
        with reg.timing("phase"):
            time.sleep(0.005)
        assert reg.timers["phase"].total > 0.0

    def test_same_name_accumulates(self):
        reg = TimerRegistry()
        for _ in range(3):
            with reg.timing("x"):
                pass
        assert reg.timers["x"].count == 3

    def test_fraction_sums_to_one(self):
        reg = TimerRegistry()
        with reg.timing("a"):
            time.sleep(0.004)
        with reg.timing("b"):
            time.sleep(0.004)
        assert reg.fraction("a") + reg.fraction("b") == pytest.approx(1.0)

    def test_fraction_empty_registry(self):
        assert TimerRegistry().fraction("missing") == 0.0

    def test_report_contains_names(self):
        reg = TimerRegistry()
        with reg.timing("rhs"):
            pass
        assert "rhs" in reg.report()

    def test_totals_mapping(self):
        reg = TimerRegistry()
        with reg.timing("io"):
            pass
        assert set(reg.totals()) == {"io"}
