"""The REP001-REP004 invariant linter: failing fixtures, clean
counterexamples, the noqa escape hatch, and the CLI surfaces."""

import json

import pytest

from repro.checkers.hotpath import hot_path, is_hot_path
from repro.checkers.linter import RULES, lint_paths, lint_source, to_json


def codes(source, **kw):
    return [v.rule for v in lint_source(source, **kw)]


class TestHotPathMarker:
    def test_marks_without_wrapping(self):
        def f(x):
            return x

        g = hot_path(f)
        assert g is f
        assert is_hot_path(g)
        assert not is_hot_path(lambda x: x)


class TestRep001:
    BAD = """
import numpy as np
from repro.checkers import hot_path

@hot_path
def kernel(f, out):
    tmp = np.zeros(f.shape)
    out[...] = tmp
"""

    LOOP_TEMP = """
from repro.checkers import hot_path

@hot_path
def accumulate(fields, out):
    for k, f in enumerate(fields):
        out[k] += 2.0 * f
"""

    CLEAN = """
import numpy as np
from repro.checkers import hot_path

@hot_path
def kernel(f, out, pool, scratch):
    np.multiply(f, 2.0, out=scratch)
    for k in range(3):
        np.add(out[k], scratch, out=out[k])
        out[k + 1] = scratch
"""

    UNDECORATED = """
import numpy as np

def cold(f):
    return np.zeros(f.shape)
"""

    def test_allocating_call_flagged(self):
        vs = lint_source(self.BAD)
        assert [v.rule for v in vs] == ["REP001"]
        assert "np.zeros" in vs[0].message
        assert vs[0].line == 7

    def test_loop_operator_temporary_flagged(self):
        vs = lint_source(self.LOOP_TEMP)
        assert [v.rule for v in vs] == ["REP001"]
        assert "operator temporary" in vs[0].message

    def test_out_argument_style_is_clean(self):
        assert codes(self.CLEAN) == []

    def test_undecorated_functions_may_allocate(self):
        assert codes(self.UNDECORATED) == []

    def test_copy_method_flagged(self):
        src = """
from repro.checkers import hot_path

@hot_path
def kernel(f):
    return f.copy()
"""
        assert codes(src) == ["REP001"]

    def test_index_arithmetic_not_flagged(self):
        src = """
from repro.checkers import hot_path

@hot_path
def shift(f, out, n):
    for i in range(n):
        out[i + 1] = f[i]
"""
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
import numpy as np
from repro.checkers import hot_path

@hot_path
def kernel(f):
    buf = np.empty(f.shape)  # repro: noqa-REP001
    return buf
"""
        assert codes(src) == []

    def test_noqa_is_rule_specific(self):
        src = """
import numpy as np
from repro.checkers import hot_path

@hot_path
def kernel(f):
    buf = np.empty(f.shape)  # repro: noqa-REP002
    return buf
"""
        assert codes(src) == ["REP001"]

    def test_noqa_comma_list(self):
        src = """
import numpy as np
from repro.checkers import hot_path

@hot_path
def kernel(f):
    buf = np.empty(f.shape)  # repro: noqa-REP002, REP001
    return buf
"""
        assert codes(src) == []


class TestRep002:
    NOT_FRESH = """
def send(comm, f):
    view = f[1:3]
    comm.Send(view, dest=1, tag=5, move=True)
"""

    USE_AFTER = """
import numpy as np

def send(comm, f):
    buf = np.empty((4,))
    buf[:] = f[:4]
    comm.Send(buf, dest=1, tag=5, move=True)
    return buf.sum()
"""

    CLEAN = """
import numpy as np

def send(comm, f):
    buf = np.empty((4,))
    buf[:] = f[:4]
    comm.Send(buf, dest=1, tag=5, move=True)
"""

    def test_non_fresh_payload_flagged(self):
        assert codes(self.NOT_FRESH) == ["REP002"]

    def test_use_after_move_flagged(self):
        vs = lint_source(self.USE_AFTER)
        assert [v.rule for v in vs] == ["REP002"]
        assert "after Send(move=True)" in vs[0].message

    def test_fresh_dead_buffer_is_clean(self):
        assert codes(self.CLEAN) == []

    def test_pool_take_counts_as_fresh(self):
        src = """
def send(comm, pool, f):
    buf = pool.take(f.shape)
    buf[...] = f
    comm.Send(buf, dest=1, tag=5, move=True)
"""
        assert codes(src) == []

    def test_non_name_payload_flagged(self):
        src = """
def send(comm, f):
    comm.Send(f[1:3], dest=1, tag=5, move=True)
"""
        assert codes(src) == ["REP002"]

    def test_plain_send_not_checked(self):
        assert codes("def f(comm, x):\n    comm.Send(x[1:], dest=1, tag=5)\n") == []

    def test_rebinding_after_move_is_clean(self):
        src = """
import numpy as np

def send(comm, f):
    buf = np.empty((4,))
    comm.Send(buf, dest=1, tag=5, move=True)
    buf = np.empty((8,))
    return buf
"""
        assert codes(src) == []


class TestRep003:
    DRIFT = """
from repro.parallel.simmpi import SimMPI

def exchange(comm, x, base, k):
    comm.Send(x, dest=1, tag=base + 8 * k)
    return comm.Recv(source=0, tag=base + 4 * k)
"""

    MATCHED = """
from repro.parallel.simmpi import SimMPI

def exchange(comm, x, base, k, p):
    comm.Send(x, dest=1, tag=base + 4 * (1 - p))
    return comm.Recv(source=0, tag=base + 4 * p)
"""

    def test_stride_drift_flagged(self):
        vs = lint_source(self.DRIFT)
        assert {v.rule for v in vs} == {"REP003"}
        assert any("Send tag" in v.message for v in vs)
        assert any("Recv tag" in v.message for v in vs)

    def test_structural_match_is_clean(self):
        assert codes(self.MATCHED) == []

    def test_constant_tags_matched_by_value(self):
        good = """
from repro.parallel.simmpi import SimMPI

def f(comm, x):
    comm.Send(x, dest=0, tag=999)
    return comm.Recv(source=1, tag=999)
"""
        bad = """
from repro.parallel.simmpi import SimMPI

def f(comm, x):
    comm.Send(x, dest=0, tag=999)
    return comm.Recv(source=1, tag=998)
"""
        assert codes(good) == []
        assert codes(bad) == ["REP003", "REP003"]

    def test_any_tag_recv_is_wildcard(self):
        src = """
from repro.parallel.simmpi import ANY_TAG, SimMPI

def f(comm, x, weird):
    comm.Send(x, dest=0, tag=3 * weird)
    return comm.Recv(source=1, tag=ANY_TAG)
"""
        assert codes(src) == []

    def test_send_only_module_skipped(self):
        # forwarding layers (e.g. tracing) post no receives of their own
        src = """
from repro.parallel.simmpi import SimMPI

def forward(comm, x, odd_tag):
    comm.Send(x, dest=0, tag=17 * odd_tag)
"""
        assert codes(src) == []

    def test_outside_parallel_scope_skipped(self):
        src = """
def f(comm, x, base, k):
    comm.Send(x, dest=1, tag=base + 8 * k)
    return comm.Recv(source=0, tag=base + 4 * k)
"""
        assert codes(src) == []


class TestRep004:
    BAD = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    if comm.rank == 0:
        comm.barrier()
"""

    DATAFLOW = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    is_root = comm.rank == 0
    if is_root:
        x = comm.allreduce(1)
"""

    CLEAN = """
from repro.parallel.simmpi import SimMPI

def f(comm, flag):
    comm.barrier()
    if comm.rank == 0:
        print("root")
    if flag:
        comm.bcast(1)
"""

    def test_collective_under_rank_conditional_flagged(self):
        vs = lint_source(self.BAD)
        assert [v.rule for v in vs] == ["REP004"]
        assert "barrier" in vs[0].message

    def test_one_level_dataflow_tracked(self):
        assert codes(self.DATAFLOW) == ["REP004"]

    def test_unconditional_and_rank_free_are_clean(self):
        assert codes(self.CLEAN) == []

    def test_string_split_not_confused_with_collective(self):
        src = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    if comm.rank == 0:
        return "a,b".split(",")
"""
        assert codes(src) == []

    def test_comm_split_under_rank_conditional_flagged(self):
        src = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    if comm.rank < 2:
        sub = comm.split(color=0)
"""
        assert codes(src) == ["REP004"]


class TestRep009:
    BAD_BARE = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    comm.Isend(b"x", dest=1, tag=0)
    comm.Recv(source=1, tag=0)
"""

    BAD_UNUSED = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    req = comm.Irecv(source=1, tag=0)
    return None
"""

    CLEAN_WAIT = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    req = comm.Irecv(source=1, tag=0)
    return req.wait()
"""

    CLEAN_WAITALL = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    reqs = [comm.Irecv(source=s, tag=0) for s in range(2)]
    reqs.append(comm.Isend(b"x", dest=1, tag=0))
    return comm.Waitall(reqs)
"""

    CLEAN_CONTAINER = """
from repro.parallel.simmpi import SimMPI

def f(comm, recvs):
    recvs.append((comm.Irecv(source=1, tag=0), "north"))
    return recvs
"""

    CLEAN_RETURNED = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    return comm.Irecv(source=1, tag=0)
"""

    def test_bare_expression_flagged(self):
        vs = lint_source(self.BAD_BARE)
        assert [v.rule for v in vs] == ["REP009"]
        assert "Isend" in vs[0].message

    def test_assigned_never_used_flagged(self):
        vs = lint_source(self.BAD_UNUSED)
        assert [v.rule for v in vs] == ["REP009"]
        assert "'req'" in vs[0].message

    def test_waited_request_clean(self):
        assert codes(self.CLEAN_WAIT) == []

    def test_waitall_clean(self):
        assert codes(self.CLEAN_WAITALL) == []

    def test_container_flow_assumed_waited(self):
        assert codes(self.CLEAN_CONTAINER) == []

    def test_returned_request_clean(self):
        assert codes(self.CLEAN_RETURNED) == []

    def test_outside_parallel_scope_ignored(self):
        src = """
def f(comm):
    comm.Isend(b"x", dest=1, tag=0)
"""
        assert codes(src) == []

    def test_noqa_suppresses(self):
        src = """
from repro.parallel.simmpi import SimMPI

def f(comm):
    comm.Isend(b"x", dest=1, tag=0)  # repro: noqa-REP009
    comm.Recv(source=1, tag=0)
"""
        assert codes(src) == []


class TestDriver:
    def test_rules_filter(self):
        both = TestRep001.BAD + """
def g(comm, f):
    comm.Send(f[1:], dest=1, tag=5, move=True)
"""
        assert set(codes(both)) == {"REP001", "REP002"}
        assert codes(both, rules=["REP001"]) == ["REP001"]

    def test_registry_covers_all_rules(self):
        assert sorted(RULES) == ["REP001", "REP002", "REP003", "REP004", "REP009"]

    def test_violations_sorted_and_located(self):
        vs = lint_source(TestRep001.BAD, path="fixture.py")
        assert vs[0].path == "fixture.py"
        assert vs[0].line > 0 and vs[0].col >= 0
        assert "fixture.py:7" in vs[0].format()

    def test_json_output_round_trips(self):
        vs = lint_source(TestRep001.BAD, path="fixture.py")
        doc = json.loads(to_json(vs, 1))
        assert doc["count"] == 1 and doc["files"] == 1
        assert doc["violations"][0]["rule"] == "REP001"
        assert doc["violations"][0]["path"] == "fixture.py"

    def test_source_tree_is_clean(self):
        violations, n_files = lint_paths(["src"])
        assert n_files > 50
        assert violations == []

    def test_lint_paths_accepts_single_file(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(TestRep001.BAD)
        violations, n_files = lint_paths([str(f)])
        assert n_files == 1
        assert [v.rule for v in violations] == ["REP001"]
        assert violations[0].path == str(f)


class TestCli:
    def test_lint_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["lint", "src/repro/checkers"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_lint_json_mode(self, capsys):
        from repro.cli import main

        main(["lint", "--format", "json", "src/repro/checkers"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 0 and doc["files"] >= 4

    def test_lint_failing_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep001.BAD)
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(f)])
        assert exc.value.code == 1
        assert "REP001" in capsys.readouterr().out

    def test_unknown_rule_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["lint", "--rules", "REP999", "src/repro/checkers"])
