"""2-rank process-backend dynamo on the compiled C kernels.

Contracts and sanitizers are import-time switches and the process
backend must inherit them through ``spawn``, so this runs in a child
interpreter with ``REPRO_KERNELS=c REPRO_CONTRACTS=1 REPRO_SANITIZE=1``
— the full paranoia configuration of the acceptance criterion.  The
child compares a 10-step serial NumPy run against the 2-rank parallel C
run and checks the resolved backend reported by the result.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.fd import backend as kernel_backend
from repro.fd.ckernels import build

pytestmark = pytest.mark.skipif(
    not kernel_backend.probe("c").available,
    reason="C kernel backend unavailable (no toolchain and no cached build)",
)

_CHILD = """
import numpy as np
from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.parallel.parallel_solver import run_parallel_dynamo

cfg = RunConfig(nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
                dt=1e-3, amp_temperature=1e-2)

# Serial NumPy reference: REPRO_KERNELS only steers the compiled path,
# so force the fused NumPy backend explicitly for the baseline.
import os
os.environ["REPRO_KERNELS"] = "fused"
ser = YinYangDynamo(cfg)
for _ in range(10):
    ser.step()

os.environ["REPRO_KERNELS"] = "c"
par = run_parallel_dynamo(cfg, 1, 2, 10, backend="process")
assert par.kernel_backend == "c", par.kernel_backend
assert par.steps == 10

worst = 0.0
for panel in (Panel.YIN, Panel.YANG):
    for (name, a), b in zip(
        par.states[panel].named_arrays(), ser.state[panel].arrays()
    ):
        scale = max(1.0, float(np.abs(b).max()))
        rel = float(np.abs(a - b).max()) / scale
        worst = max(worst, rel)
        assert rel <= 1e-13, (panel, name, rel)
print(f"C_PARALLEL_OK worst_rel={worst:.3e}")
"""


def test_two_rank_process_c_backend_matches_serial():
    build.load()  # warm the build cache before the child needs it
    env = {
        "PYTHONPATH": "src",
        "REPRO_CONTRACTS": "1",
        "REPRO_SANITIZE": "1",
        "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
    }
    # The child must find the cached shared object.
    for var in ("HOME", build._CACHE_ENV):
        if var in os.environ:
            env[var] = os.environ[var]
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        timeout=600,
    )
    assert proc.returncode == 0, f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert "C_PARALLEL_OK" in proc.stdout
