import pytest

from repro.parallel.cart import PROC_NULL, create_cart
from repro.parallel.simmpi import SimMPI


def run_cart(nprocs, dims, fn, periods=(False, False)):
    def prog(comm):
        cart = create_cart(comm, dims, periods)
        return fn(cart)

    return SimMPI.run(nprocs, prog)


class TestCoords:
    def test_row_major_mapping(self):
        out = run_cart(6, (2, 3), lambda c: c.coords())
        assert out == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_rank_of_inverts_coords(self):
        out = run_cart(6, (2, 3), lambda c: c.rank_of(c.coords()))
        assert out == list(range(6))

    def test_dims_must_tile(self):
        with pytest.raises(ValueError, match="tile"):
            run_cart(6, (2, 2), lambda c: None)

    def test_rank_of_out_of_range(self):
        def fn(cart):
            with pytest.raises(ValueError):
                cart.rank_of((5, 0))
            return True

        assert all(run_cart(4, (2, 2), fn))


class TestShift:
    def test_interior_neighbours(self):
        out = run_cart(9, (3, 3), lambda c: c.neighbours())
        centre = out[4]
        assert centre == {"north": 1, "south": 7, "west": 3, "east": 5}

    def test_edges_get_proc_null(self):
        out = run_cart(9, (3, 3), lambda c: c.neighbours())
        corner = out[0]
        assert corner["north"] == PROC_NULL
        assert corner["west"] == PROC_NULL
        assert corner["south"] == 3
        assert corner["east"] == 1

    def test_periodic_wraps(self):
        out = run_cart(4, (1, 4), lambda c: c.shift(1, 1), periods=(False, True))
        # (source, dest) for +1 shift along phi
        assert out[0] == (3, 1)
        assert out[3] == (2, 0)

    def test_shift_disp_two(self):
        out = run_cart(5, (1, 5), lambda c: c.shift(1, 2))
        assert out[0] == (PROC_NULL, 2)
        assert out[4] == (2, PROC_NULL)

    def test_bad_direction(self):
        def fn(cart):
            with pytest.raises(ValueError, match="direction"):
                cart.shift(2)
            return True

        assert all(run_cart(2, (1, 2), fn))

    def test_shift_pairs_are_consistent(self):
        """If B is A's east, then A is B's west."""
        out = run_cart(6, (2, 3), lambda c: (c.rank, c.neighbours()))
        nbrs = {r: n for r, n in out}
        for r, n in nbrs.items():
            if n["east"] != PROC_NULL:
                assert nbrs[n["east"]]["west"] == r
            if n["south"] != PROC_NULL:
                assert nbrs[n["south"]]["north"] == r
