"""Cross-module integration tests: the paper's workflow end to end."""

import numpy as np
import pytest

from repro.core import LatLonDynamo, RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.io.series import TimeSeriesRecorder
from repro.io.snapshot import snapshot_from_state
from repro.mhd.diagnostics import saturation_detector
from repro.mhd.parameters import MHDParameters
from repro.viz.columns import equatorial_vorticity
from repro.viz.slices import equatorial_slice


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


@pytest.fixture(scope="module")
def short_run(params):
    """A 30-step convection run shared by several tests."""
    cfg = RunConfig(
        nr=9, nth=14, nph=42, params=params, amp_temperature=5e-2, seed=11
    )
    dyn = YinYangDynamo(cfg)
    dyn.run(30, record_every=5)
    return dyn


class TestConvectionOnset:
    def test_buoyancy_drives_flow(self, short_run):
        """A supercritical temperature perturbation must generate flow."""
        assert short_run.energies().kinetic > 0.0
        assert short_run.is_physical()

    def test_flow_is_strongest_inside_shell(self, short_run):
        """No-slip walls: the speed peaks away from both boundaries."""
        s = short_run.state[Panel.YIN]
        v2 = sum(c**2 for c in s.velocity())
        radial_profile = v2.mean(axis=(1, 2))
        assert radial_profile.argmax() not in (0, len(radial_profile) - 1)

    def test_history_monotone_time(self, short_run):
        t, ke, me = short_run.energy_series()
        assert np.all(np.diff(t) > 0)
        assert ke[-1] > 0


class TestSectionVWorkflow:
    """Section V: run, record energies, save derived snapshots, look at
    the equatorial structure."""

    def test_series_and_saturation_probe(self, short_run):
        rec = TimeSeriesRecorder(["kinetic", "magnetic"])
        for r in short_run.history:
            rec.append(r.time, kinetic=r.energies.kinetic, magnetic=r.energies.magnetic)
        assert len(rec) == len(short_run.history)
        # far from saturated this early
        assert not saturation_detector((rec.times, rec.channel("kinetic")), window=6, tol=0.01)

    def test_snapshot_pipeline(self, short_run, tmp_path):
        from repro.io.snapshot import load_snapshot, save_snapshot

        g = short_run.grid.yin
        snap = snapshot_from_state(g, short_run.state[Panel.YIN],
                                   time=short_run.time, step=short_run.step_count)
        path = save_snapshot(tmp_path / "s.npz", snap)
        back = load_snapshot(path)
        assert back.step == short_run.step_count

    def test_equatorial_temperature_slice(self, short_run):
        temps = {p: s.temperature() for p, s in short_run.state.items()}
        phi, vals = equatorial_slice(short_run.grid, temps, nphi=90)
        assert np.isfinite(vals).all()
        # hot inner wall, cold outer wall survive in the slice
        assert vals[0].mean() > vals[-1].mean()

    def test_equatorial_vorticity_finite(self, short_run):
        _, wz = equatorial_vorticity(short_run.grid, short_run.state, nphi=64)
        assert np.isfinite(wz).all()


class TestGridComparison:
    """The same physics on both grids: energies must be comparable
    (the Yin-Yang grid is a drop-in replacement for lat-lon)."""

    def test_initial_thermal_energy_agrees(self, params):
        yy = YinYangDynamo(
            RunConfig(nr=11, nth=16, nph=48, params=params,
                      amp_temperature=0.0, amp_seed_field=0.0)
        )
        ll = LatLonDynamo(
            RunConfig(nr=11, nth=24, nph=48, params=params,
                      amp_temperature=0.0, amp_seed_field=0.0)
        )
        e_yy = yy.energies()
        e_ll = ll.energies()
        assert e_yy.thermal == pytest.approx(e_ll.thermal, rel=0.03)
        assert e_yy.mass == pytest.approx(e_ll.mass, rel=0.03)

    def test_diffusion_of_seed_field_comparable(self, params):
        """With motionless fluid, the seed field just ohmic-decays; both
        grids should dissipate magnetic energy at a similar rate."""
        common = dict(nr=9, params=params, amp_temperature=0.0,
                      amp_seed_field=1e-3, dt=2e-4, seed=3,
                      subtract_base_rhs=True)
        yy = YinYangDynamo(RunConfig(nth=14, nph=42, **common))
        ll = LatLonDynamo(RunConfig(nth=20, nph=40, **common))
        e0_yy = yy.energies().magnetic
        e0_ll = ll.energies().magnetic
        yy.run(10, record_every=0)
        ll.run(10, record_every=0)
        decay_yy = yy.energies().magnetic / e0_yy
        decay_ll = ll.energies().magnetic / e0_ll
        assert 0.0 < decay_yy <= 1.001
        assert 0.0 < decay_ll <= 1.001

    def test_yinyang_allows_bigger_steps(self, params):
        """The punchline of Section II: no pole-throttled time step."""
        yy = YinYangDynamo(RunConfig(nr=9, nth=20, nph=60, params=params))
        ll = LatLonDynamo(RunConfig(nr=9, nth=40, nph=80, params=params))
        assert yy.estimate_dt() > 2.0 * ll.estimate_dt()


class TestMagneticSeedEvolution:
    def test_seed_field_persists_through_convection(self, params):
        cfg = RunConfig(nr=9, nth=14, nph=42, params=params,
                        amp_temperature=5e-2, amp_seed_field=1e-5, seed=4)
        dyn = YinYangDynamo(cfg)
        me0 = dyn.energies().magnetic
        dyn.run(20, record_every=0)
        me1 = dyn.energies().magnetic
        assert me0 > 0
        assert me1 > 0
        assert dyn.is_physical()
