import numpy as np
import pytest

from repro.core import LatLonDynamo, RunConfig
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


def make(params, **kw):
    defaults = dict(nr=7, nth=12, nph=24, params=params, dt=5e-4)
    defaults.update(kw)
    return LatLonDynamo(RunConfig(**defaults))


class TestWellBalanced:
    def test_unperturbed_rest_state(self, params):
        dyn = make(params, amp_temperature=0.0, amp_seed_field=0.0)
        for _ in range(5):
            dyn.step()
        for c in dyn.state.f:
            assert np.abs(c).max() == 0.0


class TestStepping:
    def test_remains_physical(self, params):
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(15, record_every=5)
        assert dyn.is_physical()
        assert len(dyn.history) == 3

    def test_halos_consistent_after_steps(self, params):
        """Periodic halo columns must mirror their interior partners."""
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(5, record_every=0)
        p = dyn.state.p
        np.testing.assert_array_equal(p[:, :, 0], p[:, :, -2])
        np.testing.assert_array_equal(p[:, :, -1], p[:, :, 1])

    def test_adaptive_dt_smaller_than_yinyang(self, params):
        """The pole cells throttle the explicit step (Section II)."""
        from repro.core import YinYangDynamo

        ll = LatLonDynamo(RunConfig(nr=7, nth=22, nph=44, params=params))
        yy = YinYangDynamo(RunConfig(nr=7, nth=13, nph=34, params=params))
        # comparable equatorial resolution
        assert abs(ll.grid.dphi - yy.grid.yin.dphi) / yy.grid.yin.dphi < 0.6
        assert ll.estimate_dt() < yy.estimate_dt()

    def test_pole_step_penalty_value(self, params):
        dyn = make(params)
        assert dyn.pole_step_penalty() == dyn.grid.pole_clustering_ratio()
        assert dyn.pole_step_penalty() > 5.0


class TestEnergies:
    def test_rest_energies(self, params):
        dyn = make(params, amp_temperature=0.0, amp_seed_field=0.0)
        e = dyn.energies()
        assert e.kinetic == 0.0
        assert e.thermal > 0.0

    def test_mass_close_to_analytic(self, params):
        from scipy.integrate import quad

        from repro.mhd.initial import hydrostatic_profiles

        dyn = LatLonDynamo(
            RunConfig(nr=13, nth=20, nph=40, params=params,
                      amp_temperature=0.0, amp_seed_field=0.0)
        )
        exact, _ = quad(
            lambda r: hydrostatic_profiles(np.array([r]), params)[2][0]
            * 4 * np.pi * r**2,
            params.ri, params.ro,
        )
        assert dyn.energies().mass == pytest.approx(exact, rel=0.02)
