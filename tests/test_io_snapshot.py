import numpy as np
import pytest

from repro.grids.component import ComponentGrid, Panel
from repro.io.snapshot import (
    SNAPSHOT_FIELDS,
    Snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_from_state,
)
from repro.mhd.initial import conduction_state, perturb_state
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


@pytest.fixture(scope="module")
def yin_state(params):
    g = ComponentGrid.build(7, 12, 36, panel=Panel.YIN)
    s = conduction_state(g, params)
    perturb_state(s, amp_seed_field=1e-3, rng=np.random.default_rng(0))
    s.fph[:] = 0.05 * s.rho * np.sin(g.theta3)
    return g, s


class TestDerivation:
    def test_field_inventory(self, yin_state):
        """Section V: Cartesian B, v, omega plus T - 10 fields."""
        g, s = yin_state
        snap = snapshot_from_state(g, s)
        assert set(snap.fields) == set(SNAPSHOT_FIELDS)
        assert len(SNAPSHOT_FIELDS) == 10

    def test_temperature_matches_state(self, yin_state):
        g, s = yin_state
        snap = snapshot_from_state(g, s)
        np.testing.assert_allclose(snap.fields["temperature"], s.temperature())

    def test_rotation_flow_gives_global_vorticity(self, params):
        """v = Omega x r has omega = 2 Omega zhat in the global frame —
        from BOTH panels (the Yang conversion must rotate frames)."""
        for panel in (Panel.YIN, Panel.YANG):
            g = ComponentGrid.build(9, 16, 46, panel=panel)
            s = conduction_state(g, params)
            if panel is Panel.YIN:
                s.fph[:] = s.rho * g.r3 * np.sin(g.theta3)
            else:
                # global zhat flow expressed in Yang components:
                # compute via the map (global z = Yang local y)
                from repro.coords.spherical import cart_vector_to_sph

                th, ph = np.meshgrid(g.theta, g.phi, indexing="ij")
                # v = zhat_global x r = yhat_local x r in Yang frame
                from repro.coords.spherical import sph_to_cart

                x, y, z = sph_to_cart(1.0, th, ph)
                vx, vy, vz = z, np.zeros_like(x), -x  # yhat x r
                vr, vth, vph = cart_vector_to_sph(vx, vy, vz, th, ph)
                s.fr[:] = s.rho * g.r3 * vr[None]
                s.fth[:] = s.rho * g.r3 * vth[None]
                s.fph[:] = s.rho * g.r3 * vph[None]
            snap = snapshot_from_state(g, s)
            interior = (slice(2, -2),) * 3
            np.testing.assert_allclose(snap.fields["wz"][interior], 2.0, atol=0.05)
            np.testing.assert_allclose(snap.fields["wx"][interior], 0.0, atol=0.05)
            np.testing.assert_allclose(snap.fields["wy"][interior], 0.0, atol=0.05)

    def test_b_from_curl_a(self, yin_state):
        g, s = yin_state
        snap = snapshot_from_state(g, s)
        assert np.abs(snap.fields["bx"]).max() > 0.0


class TestPersistence:
    def test_round_trip(self, yin_state, tmp_path):
        g, s = yin_state
        snap = snapshot_from_state(g, s, time=2.5, step=17)
        path = save_snapshot(tmp_path / "snap.npz", snap)
        back = load_snapshot(path)
        assert back.panel is Panel.YIN
        assert back.time == 2.5 and back.step == 17
        for k in SNAPSHOT_FIELDS:
            np.testing.assert_allclose(back.fields[k], snap.fields[k], rtol=1e-6)

    def test_single_precision_on_disk(self, yin_state, tmp_path):
        """The paper saved single precision for volume reasons."""
        g, s = yin_state
        snap = snapshot_from_state(g, s)
        path = save_snapshot(tmp_path / "sp.npz", snap)
        with np.load(path) as data:
            assert data["temperature"].dtype == np.float32

    def test_nbytes_model(self, yin_state):
        g, s = yin_state
        snap = snapshot_from_state(g, s)
        expected = 10 * np.prod(g.shape) * 4
        assert snap.nbytes() == expected
