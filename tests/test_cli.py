import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "40.96 Tflops" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Kageyama et al." in out
        assert "finite difference" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--rows", "10"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out
        assert "#" in out  # the overlap region in the ASCII map

    def test_fig2(self, capsys):
        assert main(["fig2", "--mode", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 cyclonic / 4 anti-cyclonic" in out

    def test_volume(self, capsys):
        assert main(["volume"]) == 0
        out = capsys.readouterr().out
        assert "implied_subsample" in out

    def test_run_small(self, capsys):
        assert main(["run", "--steps", "4", "--nr", "9", "--nth", "12",
                     "--nph", "36"]) == 0
        out = capsys.readouterr().out
        assert "KE =" in out
        assert "final:" in out

    def test_run_guarded_checkpointing_and_restart(self, capsys, tmp_path):
        ckdir = tmp_path / "cks"
        base = ["run", "--nr", "9", "--nth", "12", "--nph", "36"]
        assert main(base + ["--steps", "4", "--guard",
                            "--checkpoint-every", "2",
                            "--checkpoint-dir", str(ckdir)]) == 0
        out = capsys.readouterr().out
        assert "checkpoints: 2 saved" in out
        saved = sorted(ckdir.glob("*.npz"))
        assert len(saved) == 2
        # resume from the last checkpoint and keep going
        assert main(base + ["--steps", "6", "--restart", str(saved[-1])]) == 0
        out = capsys.readouterr().out
        assert "restarting from" in out
        assert "step    10" in out  # 4 checkpointed + 6 more

    def test_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("thread", "process", "socket", "mpi4py"):
            assert name in out
        assert "active: thread (default)" in out
        assert "cross-host" in out  # the capabilities column

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_run_parallel_restart_roundtrip(self, capsys, tmp_path):
        """Checkpoint on 4 thread ranks, restart on 2 socket ranks —
        the elastic path end to end through the CLI."""
        base = ["run", "--nr", "7", "--nth", "12", "--nph", "36"]
        assert main(base + ["--backend", "thread", "--ranks", "4",
                            "--steps", "2", "--checkpoint-every", "2",
                            "--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        ckpt = tmp_path / "checkpoint_000002.npz"
        assert len(list(tmp_path.glob("checkpoint_000002_rank*.npz"))) == 4
        assert main(base + ["--backend", "socket", "--ranks", "2",
                            "--steps", "2", "--restart", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "launcher backend: socket" in out
        assert "after 4 steps" in out  # 2 checkpointed + 2 more

    def test_run_guard_is_serial_only(self):
        with pytest.raises(SystemExit, match="serial-only"):
            main(["run", "--backend", "thread", "--guard"])

    @pytest.mark.slow
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "15.20" in out
