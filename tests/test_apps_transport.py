import numpy as np
import pytest

from repro.apps.transport import (
    TransportSolver,
    gaussian_blob,
    revolution_error,
    rotation_velocity,
)
from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(5, 14, 42)


class TestRotationVelocity:
    def test_speed_profile(self, grid):
        """|v| = omega r sin(angle to axis): max omega*r on the equator."""
        vel = rotation_velocity(grid, (0, 0, 1), omega=2.0)
        for p, v in vel.items():
            speed = np.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2)
            assert speed.max() <= 2.0 * grid.yin.ro + 1e-12

    def test_polar_axis_is_pure_zonal_on_yin(self, grid):
        vel = rotation_velocity(grid, (0, 0, 1), omega=1.0)
        vr, vth, vph = vel[Panel.YIN]
        np.testing.assert_allclose(vr, 0.0, atol=1e-12)
        np.testing.assert_allclose(vth, 0.0, atol=1e-12)
        expected = grid.yin.r3 * np.sin(grid.yin.theta3)
        np.testing.assert_allclose(vph, np.broadcast_to(expected, vph.shape), atol=1e-12)

    def test_panels_carry_same_physical_flow(self, grid):
        """Divergence-free in both panels (rigid rotation)."""
        from repro.fd.operators import SphericalOperators

        vel = rotation_velocity(grid, (1, 2, 3), omega=1.0)
        for p, v in vel.items():
            ops = SphericalOperators(grid.panel(p))
            div = ops.div(tuple(np.ascontiguousarray(c) for c in v))
            sl = (slice(2, -2),) * 3
            assert np.abs(div[sl]).max() < 5e-2

    def test_zero_axis_rejected(self, grid):
        with pytest.raises(ValueError):
            rotation_velocity(grid, (0, 0, 0), omega=1.0)


class TestBlob:
    def test_peak_at_centre(self, grid):
        """Peak ~1 (slightly less when the centre falls between nodes)."""
        c = gaussian_blob(grid, (np.pi / 2, 0.3), width=0.4)
        assert 0.95 < max(float(f.max()) for f in c.values()) <= 1.0

    def test_polar_blob_lives_on_yang(self, grid):
        c = gaussian_blob(grid, (0.05, 0.0), width=0.3)
        assert c[Panel.YANG].max() > 0.9
        assert c[Panel.YIN].max() < 0.9


class TestRevolution:
    def test_second_order_convergence(self):
        errs = []
        for n in (14, 28):
            g = YinYangGrid(5, n, 3 * n)
            errs.append(revolution_error(g, width=0.7))
        assert errs[0] / errs[1] > 3.0

    def test_blob_returns_through_panel_borders(self):
        """A tilted axis drives the blob through both panels and back."""
        g = YinYangGrid(5, 22, 66)
        err = revolution_error(g, axis=(1.0, 0.0, 1.0), width=0.7)
        assert err < 0.25

    def test_maximum_principle(self):
        """Pure advection cannot create new extrema (up to the small
        dispersive over/undershoot of central differences)."""
        g = YinYangGrid(5, 18, 54)
        vel = rotation_velocity(g, (0, 0, 1), omega=1.0)
        solver = TransportSolver(g, vel)
        c = gaussian_blob(g, (np.pi / 2, 0.0), width=0.6)
        solver.enforce(c)
        c = solver.run(c, 1.0)
        assert max(float(f.max()) for f in c.values()) < 1.2
        assert min(float(f.min()) for f in c.values()) > -0.2


class TestDiffusion:
    def test_diffusion_spreads_and_lowers_peak(self, grid):
        vel = rotation_velocity(grid, (0, 0, 1), omega=0.0)
        solver = TransportSolver(grid, vel, kappa=5e-3)
        c = gaussian_blob(grid, (np.pi / 2, 0.0), width=0.4)
        solver.enforce(c)
        peak0 = max(float(f.max()) for f in c.values())
        c = solver.run(c, 2.0)
        assert max(float(f.max()) for f in c.values()) < peak0

    def test_negative_kappa_rejected(self, grid):
        vel = rotation_velocity(grid, (0, 0, 1), omega=1.0)
        with pytest.raises(ValueError):
            TransportSolver(grid, vel, kappa=-1.0)

    def test_stable_dt_shrinks_with_kappa(self, grid):
        vel = rotation_velocity(grid, (0, 0, 1), omega=1.0)
        a = TransportSolver(grid, vel).stable_dt()
        b = TransportSolver(grid, vel, kappa=1.0).stable_dt()
        assert b < a
