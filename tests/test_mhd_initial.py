import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.grids.component import ComponentGrid
from repro.mhd.initial import (
    conduction_state,
    conduction_temperature,
    hydrostatic_profiles,
    perturb_mode,
    perturb_state,
)
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


class TestConductionProfile:
    def test_boundary_values(self, params):
        assert conduction_temperature(params.ri, params) == pytest.approx(
            params.t_inner
        )
        assert conduction_temperature(params.ro, params) == pytest.approx(1.0)

    def test_harmonic(self, params):
        """T = a + b/r solves Laplace's equation: r^2 T' is constant."""
        r = np.linspace(params.ri, params.ro, 50)
        temp = conduction_temperature(r, params)
        flux = r[:-1] ** 2 * np.diff(temp) / np.diff(r)
        assert np.std(flux) / abs(np.mean(flux)) < 1e-2

    def test_monotone_decreasing(self, params):
        r = np.linspace(params.ri, params.ro, 20)
        assert np.all(np.diff(conduction_temperature(r, params)) < 0)


class TestHydrostaticProfiles:
    def test_normalisation_at_outer_wall(self, params):
        temp, p, rho = hydrostatic_profiles(np.array([params.ro]), params)
        assert temp[0] == pytest.approx(1.0)
        assert p[0] == pytest.approx(1.0)
        assert rho[0] == pytest.approx(1.0)

    def test_ideal_gas_relation(self, params):
        r = np.linspace(params.ri, params.ro, 30)
        temp, p, rho = hydrostatic_profiles(r, params)
        np.testing.assert_allclose(p, rho * temp, rtol=1e-12)

    def test_exact_hydrostatic_balance_vs_ode(self, params):
        """The closed form p = T^(g0/b) must match a numerical
        integration of dp/dr = -(p/T) g0 / r^2."""
        def rhs(r, p):
            t = conduction_temperature(r, params)
            return [-p[0] / t * params.g0 / r**2]

        r_eval = np.linspace(params.ro, params.ri, 40)
        sol = solve_ivp(
            rhs, (params.ro, params.ri), [1.0], t_eval=r_eval, rtol=1e-10, atol=1e-12
        )
        _, p_closed, _ = hydrostatic_profiles(r_eval, params)
        np.testing.assert_allclose(sol.y[0], p_closed, rtol=1e-7)

    def test_isothermal_limit_is_barometric(self):
        p = MHDParameters(t_inner=1.0 + 1e-13, g0=2.0)
        # b ~ 0: effectively isothermal
        r = np.linspace(p.ri, p.ro, 10)
        _, pr, _ = hydrostatic_profiles(r, p)
        barometric = np.exp(p.g0 * (1.0 / r - 1.0 / p.ro))
        np.testing.assert_allclose(pr, barometric, rtol=1e-6)

    def test_stratification_increases_inward(self, params):
        r = np.linspace(params.ri, params.ro, 20)
        _, p, rho = hydrostatic_profiles(r, params)
        assert np.all(np.diff(p) < 0)
        assert np.all(np.diff(rho) < 0)


class TestConductionState:
    def test_motionless_and_unmagnetised(self, params):
        g = ComponentGrid.build(7, 10, 30)
        s = conduction_state(g, params)
        for c in s.f + s.a:
            assert np.all(c == 0.0)
        assert s.is_physical()

    def test_spherically_symmetric(self, params):
        g = ComponentGrid.build(7, 10, 30)
        s = conduction_state(g, params)
        assert np.ptp(s.p, axis=(1, 2)).max() == 0.0


class TestPerturbation:
    def test_reproducible_with_seed(self, params):
        g = ComponentGrid.build(7, 10, 30)
        s1 = perturb_state(conduction_state(g, params), rng=np.random.default_rng(5))
        s2 = perturb_state(conduction_state(g, params), rng=np.random.default_rng(5))
        for a, b in zip(s1.arrays(), s2.arrays()):
            np.testing.assert_array_equal(a, b)

    def test_amplitudes_respected(self, params):
        g = ComponentGrid.build(7, 10, 30)
        base = conduction_state(g, params)
        s = perturb_state(
            base.copy(), amp_temperature=1e-4, amp_seed_field=1e-8,
            rng=np.random.default_rng(6),
        )
        dT = (s.p - base.p) / base.rho
        assert 0 < np.abs(dT).max() <= 1e-4
        assert 0 < max(np.abs(c).max() for c in s.a) <= 1e-8

    def test_pressure_perturbation_zero_on_walls(self, params):
        g = ComponentGrid.build(7, 10, 30)
        base = conduction_state(g, params)
        s = perturb_state(base.copy(), rng=np.random.default_rng(7))
        np.testing.assert_array_equal(s.p[0], base.p[0])
        np.testing.assert_array_equal(s.p[-1], base.p[-1])

    def test_velocity_untouched(self, params):
        g = ComponentGrid.build(7, 10, 30)
        s = perturb_state(conduction_state(g, params), rng=np.random.default_rng(8))
        for c in s.f:
            assert np.all(c == 0.0)


class TestPerturbMode:
    def test_mode_number_validation(self, params):
        g = ComponentGrid.build(7, 10, 30)
        with pytest.raises(ValueError, match="mode number"):
            perturb_mode(conduction_state(g, params), g, 0)

    def test_zero_at_walls(self, params):
        g = ComponentGrid.build(7, 10, 30)
        base = conduction_state(g, params)
        s = perturb_mode(base.copy(), g, 4, amplitude=1e-2)
        np.testing.assert_array_equal(s.p[0], base.p[0])
        np.testing.assert_array_equal(s.p[-1], base.p[-1])

    def test_azimuthal_structure(self, params):
        """The seeded temperature carries exactly the requested mode."""
        g = ComponentGrid.build(7, 10, 30)
        base = conduction_state(g, params)
        m = 3
        s = perturb_mode(base.copy(), g, m, amplitude=1e-2)
        dT = ((s.p - base.p) / base.rho)[3, 4]  # one (r, theta) row
        spec = np.abs(np.fft.rfft(dT))
        # the panel spans 270(+) degrees, so mode m appears near
        # m * (span / 2 pi) in the panel-sample spectrum; just check the
        # signal is a single oscillation with the right zero count
        signs = np.sign(dT[np.abs(dT) > 0.2 * np.abs(dT).max()])
        changes = int(np.sum(signs[1:] != signs[:-1]))
        assert 2 * m - 2 <= changes <= 2 * m + 2
        assert spec[0] < spec.max()  # not a constant offset

    def test_amplitude_scaling(self, params):
        g = ComponentGrid.build(7, 10, 30)
        base = conduction_state(g, params)
        s1 = perturb_mode(base.copy(), g, 4, amplitude=1e-3)
        s2 = perturb_mode(base.copy(), g, 4, amplitude=2e-3)
        d1 = np.abs(s1.p - base.p).max()
        d2 = np.abs(s2.p - base.p).max()
        assert d2 == pytest.approx(2 * d1, rel=1e-10)
