import numpy as np
import pytest

from repro.apps.heat import HeatSolver, radial_mode, radial_mode_decay_rate
from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid


class TestAnalytics:
    def test_mode_vanishes_at_walls(self):
        g = YinYangGrid(9, 12, 36)
        mode = radial_mode(g, 1)
        for f in mode.values():
            np.testing.assert_allclose(f[0], 0.0, atol=1e-14)
            np.testing.assert_allclose(f[-1], 0.0, atol=1e-14)

    def test_decay_rate_formula(self):
        g = YinYangGrid(9, 12, 36)
        lam1 = radial_mode_decay_rate(g, kappa=0.01, k=1)
        lam2 = radial_mode_decay_rate(g, kappa=0.01, k=2)
        assert lam2 == pytest.approx(4 * lam1)

    def test_mode_is_laplacian_eigenfunction(self):
        """lap(T_k) = -lambda_k T_k discretely, to truncation error."""
        from repro.fd.operators import SphericalOperators

        g = YinYangGrid(33, 12, 36)
        mode = radial_mode(g, 1)[Panel.YIN]
        ops = SphericalOperators(g.yin)
        lam = radial_mode_decay_rate(g, kappa=1.0, k=1)
        lap = ops.laplacian(mode)
        interior = (slice(2, -2), slice(2, -2), slice(2, -2))
        resid = lap[interior] + lam * mode[interior]
        assert np.abs(resid).max() < 0.02 * lam * np.abs(mode).max()


class TestSolver:
    def test_decay_rate_second_order_convergence(self):
        errs = []
        for nr in (9, 17):
            g = YinYangGrid(nr, 12, 36)
            s = HeatSolver(g, kappa=5e-3)
            lam = radial_mode_decay_rate(g, 5e-3)
            errs.append(abs(s.measured_decay_rate() - lam) / lam)
        assert errs[0] / errs[1] > 3.0
        assert errs[1] < 0.01

    def test_higher_mode_decays_faster(self):
        g = YinYangGrid(17, 12, 36)
        s1 = HeatSolver(g, kappa=5e-3)
        r1 = s1.measured_decay_rate(k=1)
        s2 = HeatSolver(g, kappa=5e-3)
        r2 = s2.measured_decay_rate(k=2, t_end=0.3 / radial_mode_decay_rate(g, 5e-3, 2))
        assert r2 == pytest.approx(4 * r1, rel=0.05)

    def test_solution_stays_radial(self):
        """A radial initial condition stays angularly uniform — the
        overset exchange must not imprint the panel geometry."""
        g = YinYangGrid(9, 12, 36)
        s = HeatSolver(g, kappa=5e-3)
        temp = radial_mode(g, 1)
        temp = s.run(temp, 1.0)
        for f in temp.values():
            angular_spread = np.ptp(f, axis=(1, 2)).max()
            assert angular_spread < 1e-6 * np.abs(f).max()

    def test_max_principle(self):
        """Diffusion with zero walls never exceeds the initial max."""
        g = YinYangGrid(9, 12, 36)
        s = HeatSolver(g, kappa=5e-3)
        temp = radial_mode(g, 1)
        a0 = s.amplitude(temp)
        temp = s.run(temp, 2.0)
        assert s.amplitude(temp) <= a0 * (1 + 1e-12)

    def test_stable_dt_positive(self):
        g = YinYangGrid(9, 12, 36)
        s = HeatSolver(g, kappa=5e-3)
        assert 0 < s.stable_dt() < 1.0

    def test_kappa_validation(self):
        with pytest.raises(ValueError):
            HeatSolver(YinYangGrid(9, 12, 36), kappa=0.0)
