import numpy as np
import pytest

from repro.mhd.filter import (
    apply_shapiro,
    filter_state,
    nyquist_damping_factor,
    shapiro_increment,
)
from repro.mhd.state import MHDState


class TestIncrement:
    def test_zero_on_constants(self):
        f = np.full((6, 7, 8), 3.7)
        np.testing.assert_allclose(shapiro_increment(f), 0.0, atol=1e-14)

    def test_zero_on_linear_fields(self):
        i, j, k = np.meshgrid(*[np.arange(n) for n in (6, 7, 8)], indexing="ij")
        f = 1.0 + 2.0 * i - 3.0 * j + 0.5 * k
        np.testing.assert_allclose(shapiro_increment(f), 0.0, atol=1e-12)

    def test_negative_on_local_maximum(self):
        f = np.zeros((5, 5, 5))
        f[2, 2, 2] = 1.0
        inc = shapiro_increment(f)
        assert inc[1, 1, 1] < 0  # the spike at interior index (2,2,2)

    def test_shape(self):
        inc = shapiro_increment(np.zeros((6, 7, 8)))
        assert inc.shape == (4, 5, 6)


class TestApply:
    def test_boundaries_untouched(self):
        rng = np.random.default_rng(0)
        f = rng.normal(size=(6, 7, 8))
        before = f.copy()
        apply_shapiro(f, 0.2)
        np.testing.assert_array_equal(f[0], before[0])
        np.testing.assert_array_equal(f[-1], before[-1])
        np.testing.assert_array_equal(f[:, 0], before[:, 0])
        np.testing.assert_array_equal(f[:, :, -1], before[:, :, -1])

    def test_zero_strength_noop(self):
        rng = np.random.default_rng(1)
        f = rng.normal(size=(5, 5, 5))
        before = f.copy()
        apply_shapiro(f, 0.0)
        np.testing.assert_array_equal(f, before)

    def test_strength_validation(self):
        with pytest.raises(ValueError):
            apply_shapiro(np.zeros((5, 5, 5)), 0.6)
        with pytest.raises(ValueError):
            apply_shapiro(np.zeros((5, 5, 5)), -0.1)

    def test_sawtooth_damped_at_predicted_rate(self):
        """A single-axis Nyquist mode decays by 1 - 2s/3 per pass."""
        n = 17
        s = 0.3
        f = np.ones((5, n, 5)) * (-1.0) ** np.arange(n)[None, :, None]
        amp0 = np.abs(f[2, 8, 2])
        apply_shapiro(f, s)
        factor = abs(f[2, 8, 2]) / amp0
        assert factor == pytest.approx(nyquist_damping_factor(s, 1), abs=1e-12)

    def test_smooth_mode_barely_touched(self):
        """A long-wavelength mode changes at O(s k^2 h^2) << sawtooth."""
        n = 64
        s = 0.3
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        f = np.ones((5, 5, n)) * np.sin(x)[None, None, :]
        g = f.copy()
        apply_shapiro(g, s)
        change = np.abs(g - f)[2, 2, 2:-2].max()
        assert change < 0.01  # vs O(0.2) for the sawtooth


class TestStateFilter:
    def test_all_fields_filtered(self):
        rng = np.random.default_rng(2)
        state = MHDState(*(rng.normal(size=(6, 6, 6)) for _ in range(8)))
        before = [a.copy() for a in state.arrays()]
        filter_state(state, 0.2)
        for a, b in zip(state.arrays(), before):
            assert not np.array_equal(a, b)

    def test_zero_strength_noop(self):
        rng = np.random.default_rng(3)
        state = MHDState(*(rng.normal(size=(5, 5, 5)) for _ in range(8)))
        before = [a.copy() for a in state.arrays()]
        filter_state(state, 0.0)
        for a, b in zip(state.arrays(), before):
            np.testing.assert_array_equal(a, b)


class TestSolverIntegration:
    def test_filtered_run_stays_physical(self):
        """The motivating case: a convection run that outlives the
        unfiltered scheme's stability at this resolution."""
        from repro.core import RunConfig, YinYangDynamo
        from repro.mhd.parameters import MHDParameters

        params = MHDParameters.laptop_demo()
        cfg = RunConfig(
            nr=9, nth=14, nph=42, params=params, amp_temperature=5e-2,
            filter_strength=0.05, seed=1,
        )
        dyn = YinYangDynamo(cfg)
        dyn.run(30, record_every=0)
        assert dyn.is_physical()

    def test_parallel_filter_matches_serial(self):
        from repro.core import RunConfig, YinYangDynamo
        from repro.grids.component import Panel
        from repro.mhd.parameters import MHDParameters
        from repro.parallel.parallel_solver import run_parallel_dynamo

        params = MHDParameters.laptop_demo()
        cfg = RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3,
                        amp_temperature=2e-2, filter_strength=0.1)
        ser = YinYangDynamo(cfg)
        for _ in range(4):
            ser.step()
        par = run_parallel_dynamo(cfg, 2, 2, 4)
        for panel in (Panel.YIN, Panel.YANG):
            for a, b in zip(par.states[panel].arrays(), ser.state[panel].arrays()):
                assert np.abs(a - b).max() < 1e-12
