import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fd.stencils import AXIS_PH, AXIS_R, AXIS_TH, diff, diff2


class TestDiffExactness:
    """Central differences are exact on polynomials up to degree 2;
    the one-sided edge stencil is exact up to degree 2 as well."""

    def test_exact_on_linear(self):
        x = np.linspace(0.0, 1.0, 11)
        f = np.broadcast_to((3.0 * x + 1.0)[:, None, None], (11, 4, 4)).copy()
        d = diff(f, x[1] - x[0], AXIS_R)
        np.testing.assert_allclose(d, 3.0, atol=1e-12)

    def test_exact_on_quadratic_everywhere(self):
        x = np.linspace(0.0, 2.0, 9)
        h = x[1] - x[0]
        f = np.broadcast_to((x**2)[None, :, None], (3, 9, 3)).copy()
        d = diff(f, h, AXIS_TH)
        np.testing.assert_allclose(d, np.broadcast_to((2 * x)[None, :, None], d.shape), atol=1e-10)

    def test_diff2_exact_on_quadratic(self):
        x = np.linspace(0.0, 2.0, 9)
        h = x[1] - x[0]
        f = np.broadcast_to((x**2)[None, None, :], (3, 3, 9)).copy()
        d2 = diff2(f, h, AXIS_PH)
        np.testing.assert_allclose(d2, 2.0, atol=1e-9)


class TestConvergence:
    def _err(self, n, op, deriv):
        x = np.linspace(0.0, 1.0, n)
        h = x[1] - x[0]
        f = np.sin(3.0 * x)[:, None, None] * np.ones((1, 3, 3))
        d = op(f, h, AXIS_R)
        exact = deriv(x)[:, None, None]
        interior = np.abs(d - exact)[1:-1].max()
        edge = max(np.abs(d - exact)[0].max(), np.abs(d - exact)[-1].max())
        return interior, edge

    def test_diff_second_order_interior_and_edges(self):
        i1, e1 = self._err(20, diff, lambda x: 3 * np.cos(3 * x))
        i2, e2 = self._err(40, diff, lambda x: 3 * np.cos(3 * x))
        assert i1 / i2 > 3.4  # ~ 4x per refinement
        assert e1 / e2 > 3.0  # one-sided 2nd order too

    def test_diff2_second_order_interior(self):
        i1, _ = self._err(20, diff2, lambda x: -9 * np.sin(3 * x))
        i2, _ = self._err(40, diff2, lambda x: -9 * np.sin(3 * x))
        assert i1 / i2 > 3.4


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match=">= 3 points"):
            diff(np.zeros((2, 4, 4)), 0.1, AXIS_R)
        with pytest.raises(ValueError, match=">= 3 points"):
            diff2(np.zeros((4, 4, 2)), 0.1, AXIS_PH)

    def test_output_is_new_array(self):
        f = np.random.default_rng(0).normal(size=(5, 5, 5))
        d = diff(f, 0.1, AXIS_R)
        assert d is not f
        assert d.shape == f.shape


class TestLinearity:
    @given(st.floats(-3, 3), st.floats(-3, 3))
    def test_diff_linear_in_field(self, a, b):
        rng = np.random.default_rng(11)
        f = rng.normal(size=(6, 5, 4))
        g = rng.normal(size=(6, 5, 4))
        left = diff(a * f + b * g, 0.2, AXIS_TH)
        right = a * diff(f, 0.2, AXIS_TH) + b * diff(g, 0.2, AXIS_TH)
        np.testing.assert_allclose(left, right, atol=1e-9)

    @given(st.sampled_from([AXIS_R, AXIS_TH, AXIS_PH]))
    def test_diff_of_constant_is_zero(self, axis):
        f = np.full((5, 5, 5), 7.3)
        np.testing.assert_allclose(diff(f, 0.1, axis), 0.0, atol=1e-12)
        np.testing.assert_allclose(diff2(f, 0.1, axis), 0.0, atol=1e-10)

    def test_diff_antisymmetric_under_reversal(self):
        """Reversing the axis negates the first derivative."""
        rng = np.random.default_rng(12)
        f = rng.normal(size=(7, 4, 4))
        d = diff(f, 0.3, AXIS_R)
        d_rev = diff(f[::-1], 0.3, AXIS_R)[::-1]
        np.testing.assert_allclose(d, -d_rev, atol=1e-12)
