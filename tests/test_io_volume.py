import pytest

from repro.io.volume import (
    PAPER_REPORTED_GB,
    PAPER_SNAPSHOTS,
    DataVolumeModel,
    paper_run_volume,
)


class TestModel:
    def test_grid_points(self):
        m = DataVolumeModel(nr=255, nth=514, nph=1538)
        assert m.grid_points == 255 * 514 * 1538 * 2

    def test_bytes_per_snapshot(self):
        m = DataVolumeModel(nr=10, nth=10, nph=10, panels=1, n_fields=10, itemsize=4)
        assert m.bytes_per_snapshot == 10**3 * 10 * 4

    def test_subsample_scales(self):
        full = DataVolumeModel(nr=10, nth=10, nph=10)
        half = DataVolumeModel(nr=10, nth=10, nph=10, subsample=0.5)
        assert half.bytes_per_snapshot == pytest.approx(full.bytes_per_snapshot / 2)

    def test_total_gb(self):
        m = DataVolumeModel(nr=255, nth=514, nph=1538)
        assert m.total_gb(127) == pytest.approx(2048.1, rel=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DataVolumeModel(nr=255, nth=514, nph=1538, subsample=0.0)
        with pytest.raises(ValueError):
            DataVolumeModel(nr=255, nth=514, nph=1538).total_bytes(0)


class TestPaperAccounting:
    """Section V: 127 saves, ~500 GB on the 255-radial grid."""

    def test_reported_per_snapshot(self):
        acct = paper_run_volume()
        assert acct["per_snapshot_gb_reported"] == pytest.approx(3.94, abs=0.01)

    def test_implied_subsample_about_one_quarter(self):
        """Full 10-field single-precision snapshots would total ~2 TB;
        500 GB implies the authors stored ~1/4 of that per save."""
        acct = paper_run_volume()
        assert acct["full_volume_gb"] == pytest.approx(2048, rel=0.01)
        assert acct["implied_subsample"] == pytest.approx(0.244, abs=0.01)

    def test_round_trip_consistency(self):
        acct = paper_run_volume()
        m = DataVolumeModel(nr=255, nth=514, nph=1538, subsample=acct["implied_subsample"])
        assert m.total_gb(PAPER_SNAPSHOTS) == pytest.approx(PAPER_REPORTED_GB, rel=1e-6)
