import dataclasses

import pytest

from repro.core.config import RunConfig
from repro.mhd.boundary import MagneticBC
from repro.mhd.parameters import MHDParameters


class TestValidation:
    def test_defaults(self):
        c = RunConfig()
        assert c.dt is None
        assert c.magnetic_bc is MagneticBC.PERFECT_CONDUCTOR
        assert c.subtract_base_rhs

    @pytest.mark.parametrize(
        "kw",
        [
            {"nr": 4}, {"nth": 7}, {"nph": 10},
            {"cfl": 0.0}, {"dt": -1.0}, {"dt_recompute_every": 0},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises((ValueError, TypeError)):
            RunConfig(**kw)

    def test_frozen(self):
        c = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            c.nr = 99


class TestPresets:
    def test_paper_headline_grid(self):
        c = RunConfig.paper_headline()
        assert (c.nr, c.nth, c.nph) == (511, 514, 1538)
        assert c.params.rayleigh == pytest.approx(3e6, rel=1e-6)

    def test_paper_mid_grid(self):
        c = RunConfig.paper_mid()
        assert c.nr == 255
        assert c.params.ekman == pytest.approx(2e-5, rel=1e-6)

    def test_custom_params_flow_through(self):
        p = MHDParameters.laptop_demo(rayleigh=3e4)
        c = RunConfig(params=p)
        assert c.params.rayleigh == pytest.approx(3e4)
