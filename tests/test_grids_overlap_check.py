import numpy as np
import pytest

from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.grids.overlap_check import (
    double_solution_mismatch,
    overlap_points,
    state_mismatch_report,
)
from repro.grids.yinyang import YinYangGrid
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(7, 18, 52)


class TestOverlapPoints:
    def test_nonempty_and_inside_donor(self, grid):
        ith, iph, th_o, ph_o = overlap_points(grid, Panel.YIN)
        assert ith.size > 0
        donor = grid.yang
        assert np.all(donor.contains_angles(th_o, ph_o, fd_only=True))

    def test_symmetric_between_panels(self, grid):
        a = overlap_points(grid, Panel.YIN)[0].size
        b = overlap_points(grid, Panel.YANG)[0].size
        assert a == b  # complementary panels


class TestAnalyticFields:
    def test_shared_global_field_matches_to_interpolation_error(self, grid):
        """Both panels sample the same smooth global function: the
        double-solution mismatch is pure bilinear interpolation error,
        O(h^2)."""
        f = grid.sample_scalar(lambda r, th, ph: np.sin(th) ** 2 * np.cos(2 * ph) + r)
        mm = double_solution_mismatch(grid, f)
        assert mm.n_points > 0
        assert mm.relative_max < 4.0 * grid.yin.dtheta**2

    def test_mismatch_shrinks_with_resolution(self):
        vals = []
        for n in (14, 28):
            g = YinYangGrid(5, n, 3 * n)
            f = g.sample_scalar(lambda r, th, ph: np.sin(th) ** 2 * np.cos(2 * ph))
            vals.append(double_solution_mismatch(g, f).max_abs)
        assert vals[0] / vals[1] > 3.0

    def test_inconsistent_fields_detected(self, grid):
        """Independent random fields per panel: mismatch at field scale."""
        rng = np.random.default_rng(0)
        f = {p: rng.normal(size=grid.shape) for p in (Panel.YIN, Panel.YANG)}
        mm = double_solution_mismatch(grid, f)
        assert mm.relative_max > 0.5


class TestLiveRun:
    def test_paper_claim_on_a_real_run(self):
        """Section II: 'The difference between the two solutions is
        within the discretization error.'  From a *globally consistent*
        perturbation (the same physical field seeded on both panels),
        the rho/p double solutions stay at interpolation-error level
        through real convection steps."""
        from repro.coords.transforms import other_panel_angles
        from repro.mhd.initial import perturb_mode

        params = MHDParameters.laptop_demo()
        cfg = RunConfig(nr=7, nth=14, nph=42, params=params,
                        amp_temperature=0.0, amp_seed_field=0.0, dt=1e-3)
        dyn = YinYangDynamo(cfg)
        for panel in (Panel.YIN, Panel.YANG):
            g = dyn.grid.panel(panel)
            angles = None
            if panel is Panel.YANG:
                th, ph = np.meshgrid(g.theta, g.phi, indexing="ij")
                angles = other_panel_angles(th, ph)
            perturb_mode(dyn.state[panel], g, 4, amplitude=2e-2,
                         global_angles=angles)
        dyn.enforce(dyn.state)
        dyn.run(20, record_every=0)
        report = state_mismatch_report(dyn.grid, dyn.state)
        for name, mm in report.items():
            field = getattr(dyn.state[Panel.YIN], name)
            variation = float(np.ptp(field - field.mean(axis=(1, 2), keepdims=True)))
            assert mm.max_abs < 0.06 * max(variation, 1e-12), name

    def test_inconsistent_initial_noise_is_flagged(self):
        """The monitor's other purpose: per-panel independent random
        perturbations ARE inconsistent in the overlap, and the mismatch
        shows it (an infidelity the default initial condition accepts,
        as the paper's infinitesimal perturbations could too)."""
        params = MHDParameters.laptop_demo()
        cfg = RunConfig(nr=7, nth=14, nph=42, params=params,
                        amp_temperature=2e-2, dt=1e-3, seed=3)
        dyn = YinYangDynamo(cfg)
        report = state_mismatch_report(dyn.grid, dyn.state)
        field = dyn.state[Panel.YIN].p
        variation = float(np.ptp(field - field.mean(axis=(1, 2), keepdims=True)))
        assert report["p"].max_abs > 0.2 * variation

    def test_report_covers_scalars(self):
        params = MHDParameters.laptop_demo()
        cfg = RunConfig(nr=7, nth=14, nph=42, params=params, dt=1e-3)
        dyn = YinYangDynamo(cfg)
        report = state_mismatch_report(dyn.grid, dyn.state)
        assert set(report) == {"rho", "p"}
