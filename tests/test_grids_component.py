import numpy as np
import pytest

from repro.grids.component import (
    PHI_MAX,
    PHI_MIN,
    THETA_MAX,
    THETA_MIN,
    ComponentGrid,
    Panel,
)


class TestPanelEnum:
    def test_other(self):
        assert Panel.YIN.other is Panel.YANG
        assert Panel.YANG.other is Panel.YIN

    def test_short_tags_match_paper(self):
        """Yin is the n-grid, Yang the e-grid (Section II)."""
        assert Panel.YIN.short == "n"
        assert Panel.YANG.short == "e"


class TestBuild:
    def test_nominal_span_with_margins(self):
        g = ComponentGrid.build(7, 14, 40, extra_theta=1, extra_phi=2)
        # the nominal boundary values must be on-grid, margins outside
        assert np.any(np.isclose(g.theta, THETA_MIN))
        assert np.any(np.isclose(g.theta, THETA_MAX))
        assert g.theta[0] < THETA_MIN and g.theta[-1] > THETA_MAX
        assert g.phi[0] < PHI_MIN and g.phi[-1] > PHI_MAX

    def test_zero_margin_is_exact_nominal(self):
        g = ComponentGrid.build(7, 11, 31, extra_theta=0, extra_phi=0)
        assert g.theta[0] == pytest.approx(THETA_MIN)
        assert g.theta[-1] == pytest.approx(THETA_MAX)
        assert g.phi[0] == pytest.approx(PHI_MIN)
        assert g.phi[-1] == pytest.approx(PHI_MAX)

    def test_rejects_over_pole_margin(self):
        with pytest.raises(ValueError, match="pole"):
            ComponentGrid.build(7, 12, 40, extra_theta=4)

    def test_rejects_tiny_grids(self):
        with pytest.raises(ValueError):
            ComponentGrid.build(7, 5, 40)

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError, match="ro must exceed"):
            ComponentGrid.build(7, 14, 40, ri=1.0, ro=0.35)

    def test_twin_swaps_panel_only(self):
        g = ComponentGrid.build(7, 14, 40, panel=Panel.YIN)
        t = g.twin()
        assert t.panel is Panel.YANG
        np.testing.assert_array_equal(t.theta, g.theta)
        np.testing.assert_array_equal(t.phi, g.phi)

    def test_paper_flagship_proportions(self):
        """514 x 1538 angular points give near-equal dtheta and dphi
        (the paper's resolution is isotropic on the sphere)."""
        g = ComponentGrid.build(5, 514, 1538)
        assert g.dtheta == pytest.approx(g.dphi, rel=0.01)


class TestRing:
    def test_ring_size_formula(self):
        g = ComponentGrid.build(7, 14, 40)
        ith, iph = g.ring_indices
        assert ith.size == g.n_ring == 2 * 40 + 2 * (14 - 2)

    def test_ring_is_perimeter(self):
        g = ComponentGrid.build(7, 10, 20)
        ith, iph = g.ring_indices
        on_edge = (ith == 0) | (ith == g.nth - 1) | (iph == 0) | (iph == g.nph - 1)
        assert np.all(on_edge)

    def test_ring_unique(self):
        g = ComponentGrid.build(7, 10, 20)
        ith, iph = g.ring_indices
        pairs = set(zip(ith.tolist(), iph.tolist()))
        assert len(pairs) == g.n_ring

    def test_fd_mask_complements_ring(self):
        g = ComponentGrid.build(7, 10, 20)
        mask = g.fd_mask()
        assert mask.sum() == (g.nth - 2) * (g.nph - 2)
        ith, iph = g.ring_indices
        assert not mask[ith, iph].any()


class TestContains:
    def test_fd_only_shrinks_box(self):
        g = ComponentGrid.build(7, 14, 40)
        edge_th = g.theta[0]
        assert g.contains_angles(edge_th, 0.0)
        assert not g.contains_angles(edge_th, 0.0, fd_only=True)

    def test_vectorised(self):
        g = ComponentGrid.build(7, 14, 40)
        th = np.array([np.pi / 2, 0.01])
        ph = np.array([0.0, 0.0])
        np.testing.assert_array_equal(g.contains_angles(th, ph), [True, False])

    def test_interior_cell_box(self):
        g = ComponentGrid.build(7, 14, 40)
        lo, hi, plo, phi_ = g.interior_cell_box()
        assert lo == pytest.approx(g.theta[1])
        assert hi == pytest.approx(g.theta[-2])
        assert plo == pytest.approx(g.phi[1])
        assert phi_ == pytest.approx(g.phi[-2])
