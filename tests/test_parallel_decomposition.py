import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.decomposition import (
    HALO,
    PanelDecomposition,
    Subdomain,
    split_indices,
)


class TestSplitIndices:
    @given(st.integers(4, 200), st.integers(1, 8))
    def test_partition_exact(self, n, parts):
        if n < parts:
            return
        blocks = split_indices(n, parts)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == n
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c
            assert b > a

    @given(st.integers(8, 200), st.integers(1, 8))
    def test_balanced(self, n, parts):
        if n < parts:
            return
        sizes = [b - a for a, b in split_indices(n, parts)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            split_indices(2, 3)
        with pytest.raises(ValueError):
            split_indices(5, 0)


class TestSubdomain:
    def test_halo_widths_at_edges(self):
        sub = Subdomain(nth=12, nph=36, th0=0, th1=6, ph0=18, ph1=36)
        assert sub.halo_n == 0  # at panel edge
        assert sub.halo_s == HALO
        assert sub.halo_w == HALO
        assert sub.halo_e == 0

    def test_local_shape(self):
        sub = Subdomain(nth=12, nph=36, th0=6, th1=12, ph0=0, ph1=18)
        assert sub.owned_shape == (6, 18)
        assert sub.local_shape == (6 + HALO, 18 + HALO)

    def test_index_round_trip(self):
        sub = Subdomain(nth=12, nph=36, th0=6, th1=12, ph0=18, ph1=36)
        gi = np.array([7, 11])
        gj = np.array([20, 35])
        li, lj = sub.to_local(gi, gj)
        assert np.all(gi == li + sub.gth0)
        assert np.all(gj == lj + sub.gph0)

    def test_owned_local_matches_global(self):
        sub = Subdomain(nth=12, nph=36, th0=6, th1=12, ph0=18, ph1=36)
        oth, oph = sub.owned_local()
        gth, gph = sub.global_slices()
        assert oth.stop - oth.start == gth.stop - gth.start
        assert oph.stop - oph.start == gph.stop - gph.start

    def test_owns(self):
        sub = Subdomain(nth=12, nph=36, th0=6, th1=12, ph0=0, ph1=18)
        assert sub.owns(6, 0)
        assert not sub.owns(5, 0)
        assert not sub.owns(6, 18)


class TestPanelDecomposition:
    @given(st.integers(1, 3), st.integers(1, 4))
    def test_tiles_partition_index_space(self, pth, pph):
        d = PanelDecomposition(14, 40, pth, pph)
        seen = np.zeros((14, 40), dtype=int)
        for sub in d.all_subdomains():
            sl = sub.global_slices()
            seen[sl] += 1
        assert np.all(seen == 1)

    def test_owner_of_matches_subdomains(self):
        d = PanelDecomposition(14, 40, 2, 3)
        for rank, sub in enumerate(d.all_subdomains()):
            gi, gj = np.meshgrid(
                np.arange(sub.th0, sub.th1), np.arange(sub.ph0, sub.ph1),
                indexing="ij",
            )
            np.testing.assert_array_equal(d.owner_of(gi, gj), rank)

    def test_owner_of_rejects_outside(self):
        d = PanelDecomposition(14, 40, 2, 2)
        with pytest.raises(ValueError):
            d.owner_of(np.array([14]), np.array([0]))

    def test_rank_layout_row_major(self):
        """Rank (i, j) = i * pph + j matches CartComm coordinates."""
        d = PanelDecomposition(14, 40, 2, 3)
        sub_1_2 = d.subdomain(1 * 3 + 2)
        assert sub_1_2.th0 == d.th_blocks[1][0]
        assert sub_1_2.ph0 == d.ph_blocks[2][0]

    def test_rejects_too_thin_blocks(self):
        with pytest.raises(ValueError, match="thinner than halo"):
            PanelDecomposition(5, 40, 4, 1)

    def test_nranks(self):
        assert PanelDecomposition(14, 40, 2, 3).nranks == 6
