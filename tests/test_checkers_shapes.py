"""The REP005-REP008 symbolic shape/dtype pass: the annotation
vocabulary, failing fixtures per rule, clean counterexamples, the noqa
escape hatch, property tests over reshape/transpose/stack, and the CLI
surfaces."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.linter import to_json
from repro.checkers.shapes import (
    SHAPE_RULES,
    Array,
    Float32,
    Float64,
    ShapeSpec,
    shape_lint_paths,
    shape_lint_source,
)


def codes(source, **kw):
    return [v.rule for v in shape_lint_source(source, **kw)]


HEADER = "from repro.checkers.shapes import Array, Float32, Float64\nimport numpy as np\n"


class TestVocabulary:
    def test_subscription_builds_specs(self):
        spec = Array["nr", "nth", "nph"]
        assert isinstance(spec, ShapeSpec)
        assert spec.dims == ("nr", "nth", "nph")
        assert spec.dtype is None
        assert Float64[8, "nr", "m"].dims == (8, "nr", "m")
        assert Float64["nr"].dtype == "float64"
        assert Float32["nr"].dtype == "float32"

    def test_specs_are_cached_and_hashable(self):
        assert Array["nr", "nth"] is Array["nr", "nth"]
        assert Float64["nr"] == Float64["nr"]
        assert Float64["nr"] != Float32["nr"]
        assert len({Float64["nr"], Float64["nr"], Array["nr"]}) == 2

    def test_optional_via_union_with_none(self):
        opt = Float64["nr"] | None
        assert opt.optional and not Float64["nr"].optional
        assert opt.dims == ("nr",) and opt.dtype == "float64"
        assert (None | Float64["nr"]).optional

    def test_ellipsis_spec(self):
        assert Float64[...].dims == (Ellipsis,)
        assert Float64[..., "n"].dims == (Ellipsis, "n")
        with pytest.raises(TypeError):
            Array[..., "a", ...]

    def test_repr_round_trips_visually(self):
        assert "Float64" in repr(Float64["nr", 3])
        assert "'nr'" in repr(Float64["nr", 3])


class TestRep005:
    MISMATCH = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["nth", "nr"]):
    return a + b
"""

    CONSISTENT = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["nr", "nth"]):
    return a * b
"""

    CALL_BINDING = HEADER + """
def inner(x: Float64["n"], y: Float64["n"]):
    return x + y

def outer(a: Float64["p"], b: Float64["q"]):
    return inner(a, b)
"""

    RETURN = HEADER + """
def f(a: Float64["nr", "nth"]) -> Float64["nth", "nr"]:
    return a
"""

    def test_elementwise_mismatch_flagged(self):
        vs = shape_lint_source(self.MISMATCH)
        assert {v.rule for v in vs} == {"REP005"}
        assert any("dimension mismatch" in v.message for v in vs)

    def test_consistent_symbols_clean(self):
        assert codes(self.CONSISTENT) == []

    def test_call_boundary_binding_conflict(self):
        # 'n' binds to 'p' via the first argument, so the second ('q')
        # provably disagrees inside one call
        vs = shape_lint_source(self.CALL_BINDING)
        assert "REP005" in [v.rule for v in vs]

    def test_return_annotation_checked_against_params(self):
        assert "REP005" in codes(self.RETURN)

    def test_propagates_through_zeros_like(self):
        src = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["nth", "nr"]):
    t = np.zeros_like(a)
    return t + b
"""
        assert "REP005" in codes(src)

    def test_int_vs_symbol_is_not_provable(self):
        src = HEADER + """
def f(a: Float64["nr", 3], b: Float64["nr", "k"]):
    return a + b
"""
        assert codes(src) == []


class TestRep006:
    BROADCAST = HEADER + """
def f(a: Float64["nr", "nth", "nph"], w: Float64["nth", "nph"]):
    return a * w
"""

    LIFTED = HEADER + """
def f(a: Float64["nr", "nth", "nph"], w: Float64["nth", "nph"]):
    return a * w[None, :, :]
"""

    METRIC = HEADER + """
def f(a: Float64["nr", "nth", "nph"], inv_r: Float64["nr", 1, 1]):
    return a * inv_r
"""

    def test_rank_changing_broadcast_flagged(self):
        vs = shape_lint_source(self.BROADCAST)
        assert [v.rule for v in vs] == ["REP006"]
        assert "broadcast" in vs[0].message

    def test_explicit_newaxis_lift_is_clean(self):
        assert codes(self.LIFTED) == []

    def test_equal_rank_metric_factor_is_clean(self):
        # the repo's (nr, 1, 1) metric-coefficient idiom must not fire
        assert codes(self.METRIC) == []

    def test_incompatible_trailing_dims_are_rep005(self):
        src = HEADER + """
def f(a: Float64["nr", "nth", "nph"], w: Float64["nph", "nth"]):
    return a * w
"""
        assert "REP005" in codes(src)


class TestRep007:
    RETURN_DRIFT = HEADER + """
def f(a: Float64["n"]) -> Float64["n"]:
    return a.astype(np.float32)
"""

    ARG_DRIFT = HEADER + """
def sink(x: Float64["n"]):
    return x

def f(a: Float32["n"]):
    return sink(a)
"""

    def test_return_downcast_flagged(self):
        vs = shape_lint_source(self.RETURN_DRIFT)
        assert [v.rule for v in vs] == ["REP007"]
        assert "float32" in vs[0].message and "float64" in vs[0].message

    def test_argument_drift_flagged(self):
        assert "REP007" in codes(self.ARG_DRIFT)

    def test_only_the_float_pair_is_flagged(self):
        src = HEADER + """
def sink(x: Float64["n"]):
    return x

def f(a: Array["n"]):
    return sink(a)
"""
        assert codes(src) == []

    def test_out_buffer_downcast_flagged(self):
        src = HEADER + """
def f(a: Float64["n"], buf: Float32["n"]):
    np.multiply(a, 2.0, out=buf)
    return buf
"""
        assert "REP007" in codes(src)


class TestRep008:
    RESHAPE = HEADER + """
def f(a: Float64["nr", "nth"]):
    return a.reshape(3, "x")
"""

    def test_reshape_element_count_change_flagged(self):
        src = HEADER + """
def f():
    x = np.zeros((3, 4))
    return x.reshape(5, 4)
"""
        vs = shape_lint_source(src)
        assert [v.rule for v in vs] == ["REP008"]
        assert "element count" in vs[0].message

    def test_reshape_permutation_of_symbols_clean(self):
        src = HEADER + """
def f(a: Float64["nr", "nth", "nph"], nr: int, nth: int, nph: int):
    return a.reshape(nph, nr, nth)
"""
        assert codes(src) == []

    def test_reshape_wildcard_silent(self):
        src = HEADER + """
def f(a: Float64["nr", "nth"]):
    return a.reshape(-1)
"""
        assert codes(src) == []

    def test_transpose_bad_axes_flagged(self):
        src = HEADER + """
def f(a: Float64["nr", "nth", "nph"]):
    return np.transpose(a, (0, 1))
"""
        vs = shape_lint_source(src)
        assert [v.rule for v in vs] == ["REP008"]
        assert "permutation" in vs[0].message

    def test_transpose_valid_permutation_clean(self):
        src = HEADER + """
def f(a: Float64["nr", "nth", "nph"]):
    return np.transpose(a, (2, 0, 1))
"""
        assert codes(src) == []

    def test_stack_of_different_shapes_flagged(self):
        src = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["nr", "nph"]):
    return np.stack([a, b])
"""
        vs = shape_lint_source(src)
        assert [v.rule for v in vs] == ["REP008"]
        assert "stack" in vs[0].message

    def test_stack_of_congruent_shapes_clean(self):
        src = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["nr", "nth"]):
    return np.stack([a, b])
"""
        assert codes(src) == []

    def test_concatenate_ignores_the_concat_axis(self):
        src = HEADER + """
def f(a: Float64["nr", "nth"], b: Float64["mr", "nth"]):
    return np.concatenate([a, b], axis=0)
"""
        assert codes(src) == []


class TestNoqa:
    def test_noqa_suppresses_each_rule(self):
        fixtures = {
            "REP005": 'def f(a: Float64["n"], b: Float64["m"]):\n'
                      "    return a + b  # repro: noqa-REP005\n",
            "REP006": 'def f(a: Float64["n", "m"], w: Float64["m"]):\n'
                      "    return a * w  # repro: noqa-REP006\n",
            "REP007": 'def f(a: Float64["n"]) -> Float64["n"]:\n'
                      "    return a.astype(np.float32)  # repro: noqa-REP007\n",
            "REP008": "def f():\n"
                      "    x = np.zeros((3, 4))\n"
                      "    return x.reshape(5, 4)  # repro: noqa-REP008\n",
        }
        for rule, body in fixtures.items():
            assert codes(HEADER + body) == [], rule

    def test_noqa_is_rule_specific(self):
        src = HEADER + (
            'def f(a: Float64["n"], b: Float64["m"]):\n'
            "    return a + b  # repro: noqa-REP008\n"
        )
        assert codes(src) == ["REP005"]


SYMS = st.lists(
    st.sampled_from(["na", "nb", "nc", "nd"]), min_size=2, max_size=4, unique=True
)


class TestPropertyReshape:
    @given(dims=SYMS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_reshape_to_permutation_is_clean(self, dims, data):
        perm = data.draw(st.permutations(dims))
        args = ", ".join(f"{d}: int" for d in dims)
        src = HEADER + (
            f"def f(a: Float64[{', '.join(map(repr, dims))}], {args}):\n"
            f"    return a.reshape({', '.join(perm)})\n"
        )
        assert codes(src) == []

    @given(dims=SYMS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_reshape_with_foreign_symbol_is_flagged(self, dims, data):
        perm = list(data.draw(st.permutations(dims)))
        perm[data.draw(st.integers(0, len(perm) - 1))] = "fresh"
        names = sorted(set(dims) | {"fresh"})
        args = ", ".join(f"{d}: int" for d in names)
        src = HEADER + (
            f"def f(a: Float64[{', '.join(map(repr, dims))}], {args}):\n"
            f"    return a.reshape({', '.join(perm)})\n"
        )
        assert codes(src) == ["REP008"]


class TestPropertyTranspose:
    @given(dims=SYMS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_valid_permutation_clean_and_tracked(self, dims, data):
        perm = data.draw(st.permutations(range(len(dims))))
        # the transposed result must *propagate*: adding it to an array
        # annotated with the permuted dims stays clean, while a mismatch
        # against the original annotation is caught
        permuted = [dims[i] for i in perm]
        src = HEADER + (
            f"def f(a: Float64[{', '.join(map(repr, dims))}], "
            f"b: Float64[{', '.join(map(repr, permuted))}]):\n"
            f"    t = np.transpose(a, {tuple(perm)})\n"
            f"    return t + b\n"
        )
        assert codes(src) == []

    @given(dims=SYMS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_wrong_length_axes_flagged(self, dims, data):
        k = data.draw(st.integers(1, len(dims) - 1))
        axes = tuple(range(k))
        src = HEADER + (
            f"def f(a: Float64[{', '.join(map(repr, dims))}]):\n"
            f"    return np.transpose(a, {axes})\n"
        )
        assert codes(src) == ["REP008"]


class TestPropertyStack:
    @given(dims=SYMS, n=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_congruent_stack_is_clean(self, dims, n):
        spec = ", ".join(map(repr, dims))
        params = ", ".join(f"a{i}: Float64[{spec}]" for i in range(n))
        arrays = ", ".join(f"a{i}" for i in range(n))
        src = HEADER + (
            f"def f({params}):\n"
            f"    return np.stack([{arrays}])\n"
        )
        assert codes(src) == []

    @given(dims=SYMS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_one_divergent_axis_is_flagged(self, dims, data):
        other = list(dims)
        other[data.draw(st.integers(0, len(dims) - 1))] = "odd"
        src = HEADER + (
            f"def f(a: Float64[{', '.join(map(repr, dims))}], "
            f"b: Float64[{', '.join(map(repr, other))}]):\n"
            f"    return np.stack([a, b])\n"
        )
        assert codes(src) == ["REP008"]


class TestDriver:
    def test_registry_covers_all_rules(self):
        assert sorted(SHAPE_RULES) == ["REP005", "REP006", "REP007", "REP008"]

    def test_rules_filter(self):
        src = TestRep005.MISMATCH + TestRep007.RETURN_DRIFT.removeprefix(HEADER).replace(
            "def f", "def g"
        )
        assert set(codes(src)) == {"REP005", "REP007"}
        assert set(codes(src, rules=["REP007"])) == {"REP007"}

    def test_json_output_round_trips(self):
        vs = shape_lint_source(TestRep005.MISMATCH, path="fixture.py")
        doc = json.loads(to_json(vs, 1))
        assert doc["count"] == len(vs) >= 1
        assert doc["violations"][0]["rule"] == "REP005"
        assert doc["violations"][0]["path"] == "fixture.py"

    def test_source_tree_is_shape_clean(self):
        # the shipped tree carries the annotations and must stay clean
        violations, n_files = shape_lint_paths(["src"])
        assert n_files > 50
        assert violations == []

    def test_cross_file_registry(self, tmp_path):
        (tmp_path / "defs.py").write_text(HEADER + """
def stencil(f: Float64["nr", "nth"]) -> Float64["nr", "nth"]:
    return f
""")
        (tmp_path / "use.py").write_text(HEADER + """
def caller(a: Float64["nth", "nr"], b: Float64["nr", "nth"]):
    return stencil(a) + b
""")
        violations, n_files = shape_lint_paths([str(tmp_path)])
        assert n_files == 2
        assert {v.rule for v in violations} == {"REP005"}


class TestCli:
    def test_lint_shapes_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["lint", "--shapes", "src/repro/checkers"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_shapes_on_by_default(self, tmp_path, capsys):
        """Every rule family runs by default: the default single-pass
        lint catches a REP005 shape mismatch without ``--shapes``."""
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep005.MISMATCH)
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(f)])
        assert exc.value.code == 1
        assert "REP005" in capsys.readouterr().out

    def test_lint_shapes_failing_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep005.MISMATCH)
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--shapes", str(f)])
        assert exc.value.code == 1
        assert "REP005" in capsys.readouterr().out

    def test_explicit_shape_rule_selection(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep005.MISMATCH)
        with pytest.raises(SystemExit):
            main(["lint", "--rules", "REP005", "--format", "json", str(f)])
        doc = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in doc["violations"]} == {"REP005"}

    def test_unknown_rule_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["lint", "--rules", "REP042", "src/repro/checkers"])
