import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.refinement import (
    coarsen,
    convergence_triplet,
    prolong_scalar,
    prolong_state,
    refine,
)
from repro.grids.yinyang import YinYangGrid
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def base():
    return YinYangGrid(7, 14, 40)


class TestRefine:
    def test_cell_counts_double(self, base):
        fine = refine(base, 2)
        assert fine.yin.nr == 13
        # nominal cells double; margins preserved
        assert fine.yin.extra_theta == base.yin.extra_theta
        assert fine.yin.dtheta == pytest.approx(base.yin.dtheta / 2)
        assert fine.yin.dphi == pytest.approx(base.yin.dphi / 2)

    def test_spans_preserved(self, base):
        fine = refine(base, 2)
        assert fine.yin.ri == base.yin.ri
        assert fine.yin.ro == base.yin.ro

    def test_coarsen_inverts_refine(self, base):
        fine = refine(base, 2)
        back = coarsen(fine, 2)
        np.testing.assert_allclose(back.yin.theta, base.yin.theta)
        np.testing.assert_allclose(back.yin.r, base.yin.r)

    def test_coarsen_requires_divisibility(self, base):
        with pytest.raises(ValueError, match="not divisible"):
            coarsen(base, 4)

    def test_triplet(self, base):
        c, m, f = convergence_triplet(base)
        assert m.yin.dtheta == pytest.approx(c.yin.dtheta / 2)
        assert f.yin.dtheta == pytest.approx(c.yin.dtheta / 4)


class TestProlongation:
    def test_exact_on_trilinear_fields(self, base):
        """Fields linear in (r, theta, phi) transfer exactly."""
        fine = refine(base, 2)
        f_src = {}
        for p in (Panel.YIN, Panel.YANG):
            g = base.panel(p)
            f_src[p] = np.broadcast_to(
                g.r3 + 0.5 * g.theta3 - 0.2 * g.phi3, g.shape
            ).copy()
        out = prolong_scalar(base, fine, f_src)
        for p in (Panel.YIN, Panel.YANG):
            g = fine.panel(p)
            exact = np.broadcast_to(g.r3 + 0.5 * g.theta3 - 0.2 * g.phi3, g.shape)
            interior = (slice(None), slice(1, -1), slice(1, -1))
            np.testing.assert_allclose(out[p][interior], exact[interior], atol=1e-10)

    def test_smooth_field_second_order(self, base):
        fine = refine(base, 2)
        fn = lambda r, th, ph: np.sin(2 * th) * np.cos(ph) * r  # noqa: E731
        f_src = base.sample_scalar(fn)
        out = prolong_scalar(base, fine, f_src)
        exact = fine.sample_scalar(fn)
        err = max(
            float(np.abs(out[p] - exact[p]).max()) for p in (Panel.YIN, Panel.YANG)
        )
        assert err < 2.5 * base.yin.dtheta**2

    def test_state_transfer_restarts_solver(self, base):
        """A coarse state prolonged to a fine grid is a valid fine-grid
        solver state (the multigrid-style warm start)."""
        from repro.core import RunConfig, YinYangDynamo

        params = MHDParameters.laptop_demo()
        coarse_dyn = YinYangDynamo(
            RunConfig(nr=7, nth=14, nph=40, params=params, dt=1e-3,
                      amp_temperature=1e-2)
        )
        coarse_dyn.run(3, record_every=0)
        fine = refine(base, 2)
        fine_dyn = YinYangDynamo(
            RunConfig(nr=13, nth=25, nph=75, params=params, dt=5e-4,
                      amp_temperature=0.0, amp_seed_field=0.0)
        )
        # grid shapes must match the refined grid for the transfer
        assert fine_dyn.grid.shape == fine.shape
        fine_dyn.state = prolong_state(base, fine, coarse_dyn.state)
        fine_dyn.enforce(fine_dyn.state)
        fine_dyn.run(3, record_every=0)
        assert fine_dyn.is_physical()
        # energies comparable between the two representations
        e_c = coarse_dyn.energies().thermal
        e_f = fine_dyn.energies().thermal
        assert e_f == pytest.approx(e_c, rel=0.05)
