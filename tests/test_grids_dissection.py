import numpy as np
import pytest

from repro.grids.dissection import (
    SPHERE_AREA,
    baseball_dissection_halves_area,
    component_area,
    covered_fraction_monte_carlo,
    cube_dissection_band_area,
    extended_overlap_fraction,
    minimal_overlap_fraction,
    overlap_area,
    overlap_fraction,
)


class TestAnalytic:
    def test_component_area_closed_form(self):
        """Basic panel: (3 pi / 2) * sqrt(2)."""
        assert component_area() == pytest.approx(1.5 * np.pi * np.sqrt(2.0))

    def test_overlap_is_about_six_percent(self):
        """The paper's 'about 6 %' figure: (3 sqrt(2) - 4)/4 = 6.066 %."""
        f = overlap_fraction()
        assert f == pytest.approx((3.0 * np.sqrt(2.0) - 4.0) / 4.0)
        assert 0.060 < f < 0.061

    def test_two_components_cover_sphere(self):
        assert 2 * component_area() - overlap_area() == pytest.approx(SPHERE_AREA)

    def test_minimal_dissection_has_zero_overlap(self):
        assert minimal_overlap_fraction() == 0.0

    def test_extension_margins_grow_overlap(self):
        base = overlap_fraction()
        bigger = extended_overlap_fraction(0.02, 0.04)
        assert bigger > base

    def test_extension_zero_matches_base(self):
        assert extended_overlap_fraction(0.0, 0.0) == pytest.approx(overlap_fraction())


class TestMonteCarlo:
    def test_full_coverage_and_overlap(self):
        covered, doubled = covered_fraction_monte_carlo(100_000)
        assert covered == 1.0
        assert doubled == pytest.approx(overlap_fraction(), abs=0.004)

    def test_seeded_reproducibility(self):
        a = covered_fraction_monte_carlo(10_000, seed=1)
        b = covered_fraction_monte_carlo(10_000, seed=1)
        assert a == b

    def test_shrunken_panels_leave_gaps(self):
        covered, _ = covered_fraction_monte_carlo(
            50_000,
            theta_min=np.pi / 3, theta_max=2 * np.pi / 3,
        )
        assert covered < 1.0


class TestNamedDissections:
    def test_baseball_halves(self):
        assert baseball_dissection_halves_area() == pytest.approx(2 * np.pi)

    def test_cube_band(self):
        assert cube_dissection_band_area() == pytest.approx(4 * SPHERE_AREA / 6)
