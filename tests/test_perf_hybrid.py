import pytest

from repro.perf.hybrid import HybridPerformanceModel, problem_size_sweep


@pytest.fixture(scope="module")
def model():
    m = HybridPerformanceModel()
    m.calibrate_kernel_efficiency()
    return m


class TestHybridPrediction:
    def test_process_count_is_nodes(self, model):
        p = model.predict_hybrid(511, 514, 1538, 4096)
        # 4096 APs -> 512 MPI processes, 256 per panel
        assert p.process_grid[0] * p.process_grid[1] == 256

    def test_whole_node_requirement(self, model):
        with pytest.raises(ValueError, match="whole, even"):
            model.predict_hybrid(511, 514, 1538, 4100)

    def test_efficiency_in_range(self, model):
        p = model.predict_hybrid(511, 514, 1538, 4096)
        assert 0.0 < p.efficiency < 1.0

    def test_comparison_structure(self, model):
        cmp = model.compare(255, 514, 1538, 2560)
        assert cmp.flat.n_processors == cmp.hybrid.n_processors
        assert cmp.hybrid_advantage > 0.0


class TestNakajimaObservation:
    """Section IV: flat MPI needs larger problems to match hybrid."""

    def test_hybrid_wins_at_small_problems(self, model):
        sweep = problem_size_sweep(model, 4096, radial_sizes=(63, 511))
        small, large = sweep[0], sweep[-1]
        # hybrid's relative advantage shrinks as the problem grows
        assert small.hybrid_advantage > large.hybrid_advantage

    def test_flat_mpi_competitive_at_flagship_size(self, model):
        """The paper's point: yycore's flat MPI already performs well at
        its (relatively modest) 8e8-point problem."""
        cmp = model.compare(511, 514, 1538, 4096)
        assert cmp.flat.efficiency > 0.4
        assert cmp.hybrid_advantage < 1.3

    def test_advantage_monotone_over_sweep(self, model):
        sweep = problem_size_sweep(model, 4096)
        advantages = [c.hybrid_advantage for c in sweep]
        assert advantages == sorted(advantages, reverse=True)
