import pytest

from repro.perf.comparisons import (
    PAPER_DERIVED,
    TABLE3_ENTRIES,
    format_table3,
    table3_rows,
)


class TestEntries:
    def test_five_codes(self):
        assert len(TABLE3_ENTRIES) == 5
        labels = [e.label for e in TABLE3_ENTRIES]
        assert labels[-1] == "Kageyama et al."

    def test_this_papers_row(self):
        k = TABLE3_ENTRIES[-1]
        assert k.tflops == 15.2
        assert k.nodes == 512
        assert k.method == "finite difference"
        assert k.parallelisation == "flat MPI"


class TestDerivedColumns:
    """Recompute the derived rows and compare to the paper's printing."""

    @pytest.mark.parametrize("entry", TABLE3_ENTRIES, ids=lambda e: e.label)
    def test_points_per_ap(self, entry):
        paper = PAPER_DERIVED[entry.label]["points_per_ap"]
        assert entry.points_per_ap == pytest.approx(paper, rel=0.08)

    @pytest.mark.parametrize("entry", TABLE3_ENTRIES, ids=lambda e: e.label)
    def test_flops_per_gridpoint(self, entry):
        paper = PAPER_DERIVED[entry.label]["flops_per_gridpoint"]
        assert entry.flops_per_gridpoint == pytest.approx(paper, rel=0.08)

    @pytest.mark.parametrize("entry", TABLE3_ENTRIES, ids=lambda e: e.label)
    def test_published_efficiency_consistent_with_peak(self, entry):
        """TFlops / (nodes x 64 GFlops) must reproduce the printed
        efficiency column."""
        assert entry.peak_fraction_check == pytest.approx(
            entry.efficiency, abs=0.035
        )

    def test_yycore_needs_fewest_points_among_flat_mpi(self):
        """Section IV's argument: yycore reaches ~15 TFlops with 20-50x
        fewer grid points per AP than the other flat-MPI codes."""
        flat = [e for e in TABLE3_ENTRIES if "flat" in e.parallelisation.lower()]
        yy = [e for e in flat if e.label == "Kageyama et al."][0]
        for other in flat:
            if other is yy:
                continue
            assert yy.points_per_ap < other.points_per_ap / 10


class TestFormatting:
    def test_rows_have_all_columns(self):
        rows = table3_rows()
        assert len(rows) == 5
        assert "Flops/g.p." in rows[0]
        assert rows[-1]["Method"] == "finite difference"

    def test_format_aligned(self):
        text = format_table3()
        lines = text.splitlines()
        assert len(lines) == 6
        assert len({len(l) for l in lines}) <= 2  # consistent width
