import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.fd.operators import SphericalOperators
from repro.fd.strain import (
    strain_double_contraction,
    strain_tensor,
    trace_equals_divergence_residual,
    viscous_dissipation,
)
from repro.grids.component import ComponentGrid


def grid_ops(n=13):
    g = ComponentGrid.build(n, n, 3 * n)
    return g, SphericalOperators(g)


def full(g, a):
    return np.broadcast_to(a, g.shape).copy()


class TestStrainTensor:
    def test_rigid_rotation_is_strain_free(self):
        """Solid-body rotation deforms nothing: e_ij -> 0 (2nd order)."""
        g, ops = grid_ops(17)
        vph = full(g, g.r3 * np.sin(g.theta3))
        e = strain_tensor(ops, (g.zeros(), g.zeros(), vph))
        sl = (slice(1, -1),) * 3
        for comp in e.values():
            assert np.abs(comp[sl]).max() < g.dtheta**2

    def test_uniform_expansion(self):
        """v = r rhat: e = diag(1, 1, 1), pure expansion."""
        g, ops = grid_ops(11)
        v = (full(g, g.r3 * np.ones_like(g.theta3)), g.zeros(), g.zeros())
        e = strain_tensor(ops, v)
        for key in ("rr", "tt", "pp"):
            np.testing.assert_allclose(e[key], 1.0, atol=1e-9)
        for key in ("rt", "rp", "tp"):
            np.testing.assert_allclose(e[key], 0.0, atol=1e-9)

    def test_trace_equals_divergence_exactly(self):
        """tr(e) and div share stencils: the residual is exactly zero."""
        g, ops = grid_ops(9)
        rng = np.random.default_rng(6)
        v = tuple(rng.normal(size=g.shape) for _ in range(3))
        res = trace_equals_divergence_residual(ops, v)
        np.testing.assert_allclose(res, 0.0, atol=1e-13)


class TestDissipation:
    @given(st.integers(0, 5))
    def test_nonnegative_for_random_fields(self, seed):
        """Phi = 2 mu (e:e - tr(e)^2/3) >= 0 for any velocity field."""
        g, ops = grid_ops(9)
        rng = np.random.default_rng(seed)
        v = tuple(rng.normal(size=g.shape) for _ in range(3))
        phi = viscous_dissipation(ops, v, mu=0.7)
        assert phi.min() >= -1e-10 * max(1.0, np.abs(phi).max())

    def test_zero_for_rigid_rotation(self):
        g, ops = grid_ops(17)
        vph = full(g, g.r3 * np.sin(g.theta3))
        phi = viscous_dissipation(ops, (g.zeros(), g.zeros(), vph), mu=1.0)
        sl = (slice(1, -1),) * 3
        # Phi is quadratic in the strain, so the spurious value is O(h^4)
        assert np.abs(phi[sl]).max() < 4.0 * g.dtheta**4

    def test_zero_for_uniform_expansion(self):
        """Pure expansion is all trace: the deviatoric part vanishes."""
        g, ops = grid_ops(11)
        v = (full(g, g.r3 * np.ones_like(g.theta3)), g.zeros(), g.zeros())
        phi = viscous_dissipation(ops, v, mu=1.0)
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    def test_scales_linearly_with_mu(self):
        g, ops = grid_ops(9)
        rng = np.random.default_rng(9)
        v = tuple(rng.normal(size=g.shape) for _ in range(3))
        p1 = viscous_dissipation(ops, v, mu=1.0)
        p3 = viscous_dissipation(ops, v, mu=3.0)
        np.testing.assert_allclose(p3, 3.0 * p1, rtol=1e-12)

    def test_shear_flow_value(self):
        """Uniform shear du_x/dz = S: Phi = mu S^2 pointwise.

        v = S z xhat in Cartesian; its spherical components are smooth,
        and the dissipation must be mu S^2 everywhere (2nd order)."""
        g, ops = grid_ops(17)
        S = 0.8
        th, ph = g.theta3, g.phi3
        z = g.r3 * np.cos(th)
        # v = S z xhat: components via xhat . (rhat, thhat, phhat)
        vr = full(g, S * z * np.sin(th) * np.cos(ph))
        vth = full(g, S * z * np.cos(th) * np.cos(ph))
        vph = full(g, -S * z * np.sin(ph))
        phi = viscous_dissipation(ops, (vr, vth, vph), mu=1.0)
        sl = (slice(2, -2),) * 3
        np.testing.assert_allclose(phi[sl], S**2, rtol=20.0 * g.dtheta**2)


class TestDoubleContraction:
    def test_counts_off_diagonals_twice(self):
        e = {k: np.ones((2, 2, 2)) for k in ("rr", "tt", "pp", "rt", "rp", "tp")}
        ee = strain_double_contraction(e)
        np.testing.assert_allclose(ee, 3.0 + 2.0 * 3.0)
