import pytest

from repro.machine.specs import EARTH_SIMULATOR, EarthSimulatorSpec
from repro.perf.feasibility import (
    check_feasibility,
    max_grid_on_machine,
)
from repro.perf.model import PerformanceModel


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


class TestFlagshipFeasibility:
    def test_flagship_fits(self, model):
        """The paper's actual run obviously fit the machine."""
        pred = model.predict(511, 514, 1538, 4096)
        rep = check_feasibility(pred, EARTH_SIMULATOR)
        assert rep.feasible
        assert rep.nodes_used == 512
        assert rep.problems() == []

    def test_memory_per_process_near_list1(self, model):
        """List 1: ~1.1 GB per process (fields + runtime overhead)."""
        pred = model.predict(511, 514, 1538, 4096)
        rep = check_feasibility(pred, EARTH_SIMULATOR)
        assert 0.9 < rep.memory_per_process_gb < 1.3

    def test_oversubscription_detected(self, model):
        pred = model.predict(511, 514, 1538, 5120)
        small = EarthSimulatorSpec(total_nodes=320)  # half machine
        rep = check_feasibility(pred, small)
        assert not rep.fits_processors
        assert "more processes" in rep.problems()[0]

    def test_memory_wall_detected(self, model):
        tiny = EarthSimulatorSpec(node_memory_gb=1.0)
        pred = model.predict(511, 514, 1538, 4096)
        rep = check_feasibility(pred, tiny)
        assert not rep.fits_memory


class TestCapacityEnvelope:
    def test_max_grid_exceeds_flagship(self):
        """The 10 TB machine could hold grids far beyond 514 angular
        points at nr = 511 — the paper's run was compute-, not
        memory-bound."""
        nth_max = max_grid_on_machine(EARTH_SIMULATOR)
        assert nth_max > 514

    def test_scales_with_node_memory(self):
        big = EarthSimulatorSpec(node_memory_gb=64.0)
        assert max_grid_on_machine(big) > max_grid_on_machine(EARTH_SIMULATOR)
