import numpy as np
import pytest

from repro.viz.render import (
    equatorial_disk_image,
    normalise,
    read_pnm,
    write_pgm,
    write_signed_ppm,
)


class TestNormalise:
    def test_range(self):
        v = normalise(np.array([[1.0, 3.0], [5.0, 9.0]]))
        assert v.min() == 0.0 and v.max() == 1.0

    def test_constant_field(self):
        v = normalise(np.full((3, 3), 7.0))
        assert np.all(v == 0.5)

    def test_symmetric_pins_zero(self):
        v = normalise(np.array([[-2.0, 0.0, 1.0]]), symmetric=True)
        assert v[0, 1] == 0.5
        assert v[0, 0] == 0.0


class TestPGM:
    def test_round_trip(self, tmp_path):
        field = np.linspace(0, 1, 12).reshape(3, 4)
        path = write_pgm(tmp_path / "f.pgm", field)
        magic, data = read_pnm(path)
        assert magic == "P5"
        assert data.shape == (3, 4)
        assert data[0, 0] == 0 and data[-1, -1] == 255

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 2)))


class TestPPM:
    def test_two_colour_convention(self, tmp_path):
        """Positive -> red channel saturated, negative -> blue."""
        field = np.array([[1.0, -1.0, 0.0]])
        path = write_signed_ppm(tmp_path / "f.ppm", field)
        magic, rgb = read_pnm(path)
        assert magic == "P6"
        r_pos, b_pos = rgb[0, 0, 0], rgb[0, 0, 2]
        r_neg, b_neg = rgb[0, 1, 0], rgb[0, 1, 2]
        assert r_pos == 255 and b_pos == 0
        assert r_neg == 0 and b_neg == 255
        assert tuple(rgb[0, 2]) == (255, 255, 255)  # zero is white

    def test_zero_field(self, tmp_path):
        path = write_signed_ppm(tmp_path / "z.ppm", np.zeros((2, 2)))
        _, rgb = read_pnm(path)
        assert np.all(rgb == 255)


class TestDiskImage:
    def test_annulus_geometry(self):
        phi = np.linspace(-np.pi, np.pi, 64, endpoint=False)
        values = np.outer(np.arange(5.0), np.ones(64))
        img = equatorial_disk_image(phi, values, size=101, r_inner_frac=0.35)
        c = 50
        assert np.isnan(img[c, c])  # inside the inner core
        assert np.isnan(img[0, 0])  # outside the shell (corner)
        assert not np.isnan(img[c, 95])  # inside the annulus

    def test_radial_ordering(self):
        """Values increase outward when the slice does."""
        phi = np.linspace(-np.pi, np.pi, 64, endpoint=False)
        values = np.outer(np.arange(5.0), np.ones(64))
        img = equatorial_disk_image(phi, values, size=101)
        c = 50
        assert img[c, 98] > img[c, 70]

    def test_azimuthal_structure_survives(self):
        phi = np.linspace(-np.pi, np.pi, 128, endpoint=False)
        values = np.ones((4, 128)) * np.sign(np.sin(3 * phi))[None, :]
        img = equatorial_disk_image(phi, values, size=120)
        vals = img[np.isfinite(img)]
        assert set(np.unique(vals)) <= {-1.0, 0.0, 1.0}
        assert (vals > 0).any() and (vals < 0).any()
