import numpy as np
import pytest

from repro.grids.base import PatchMetric, SphericalPatch


def make_patch(nr=6, nth=8, nph=10):
    return SphericalPatch(
        r=np.linspace(0.35, 1.0, nr),
        theta=np.linspace(0.8, 2.3, nth),
        phi=np.linspace(-2.0, 2.0, nph),
    )


class TestValidation:
    def test_valid_patch(self):
        p = make_patch()
        assert p.shape == (6, 8, 10)

    def test_rejects_nonuniform(self):
        r = np.array([0.35, 0.4, 0.5, 0.9, 1.0])
        with pytest.raises(ValueError, match="uniformly spaced"):
            SphericalPatch(r=r, theta=np.linspace(1, 2, 5), phi=np.linspace(0, 1, 5))

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SphericalPatch(
                r=np.linspace(1.0, 0.35, 5),
                theta=np.linspace(1, 2, 5),
                phi=np.linspace(0, 1, 5),
            )

    def test_rejects_pole_point(self):
        with pytest.raises(ValueError, match="pole"):
            SphericalPatch(
                r=np.linspace(0.35, 1, 5),
                theta=np.linspace(0.0, np.pi / 2, 5),
                phi=np.linspace(0, 1, 5),
            )

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            SphericalPatch(
                r=np.linspace(0.0, 1.0, 5),
                theta=np.linspace(1, 2, 5),
                phi=np.linspace(0, 1, 5),
            )

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="at least 4"):
            SphericalPatch(
                r=np.linspace(0.35, 1, 3),
                theta=np.linspace(1, 2, 5),
                phi=np.linspace(0, 1, 5),
            )

    def test_rejects_2d_coordinate(self):
        with pytest.raises(ValueError, match="1-D"):
            SphericalPatch(
                r=np.ones((4, 2)),
                theta=np.linspace(1, 2, 5),
                phi=np.linspace(0, 1, 5),
            )


class TestGeometry:
    def test_spacings(self):
        p = make_patch()
        assert p.dr == pytest.approx(0.65 / 5)
        assert p.dtheta == pytest.approx(1.5 / 7)
        assert p.ri == 0.35 and p.ro == 1.0

    def test_broadcast_views(self):
        p = make_patch()
        assert p.r3.shape == (6, 1, 1)
        assert p.theta3.shape == (1, 8, 1)
        assert p.phi3.shape == (1, 1, 10)

    def test_volume_weights_integrate_shell(self):
        """Sum of weights = volume of the angular sector of the shell."""
        p = make_patch(20, 30, 30)
        vol = float(np.sum(p.volume_weights()))
        r0, r1 = p.ri, p.ro
        exact = (
            (r1**3 - r0**3) / 3.0
            * (np.cos(p.theta[0]) - np.cos(p.theta[-1]))
            * (p.phi[-1] - p.phi[0])
        )
        assert vol == pytest.approx(exact, rel=2e-3)

    def test_integrate_constant(self):
        p = make_patch(16, 20, 20)
        one = np.ones(p.shape)
        assert p.integrate(one) == pytest.approx(float(np.sum(p.volume_weights())))

    def test_integrate_shape_mismatch(self):
        p = make_patch()
        with pytest.raises(ValueError, match="shape"):
            p.integrate(np.ones((2, 2, 2)))

    def test_cell_solid_angle_total(self):
        p = make_patch(6, 40, 40)
        total = float(np.sum(p.cell_solid_angle()))
        exact = (np.cos(p.theta[0]) - np.cos(p.theta[-1])) * (p.phi[-1] - p.phi[0])
        assert total == pytest.approx(exact, rel=2e-3)

    def test_scalar_field_sampling(self):
        p = make_patch()
        f = p.scalar_field(lambda r, th, ph: r * 0 + 2.5)
        assert f.shape == p.shape
        assert np.all(f == 2.5)


class TestMetric:
    def test_cached(self):
        p = make_patch()
        assert p.metric is p.metric

    def test_values(self):
        p = make_patch()
        m = PatchMetric(p)
        np.testing.assert_allclose(m.inv_r[:, 0, 0], 1.0 / p.r)
        np.testing.assert_allclose(m.sin_th[0, :, 0], np.sin(p.theta))
        np.testing.assert_allclose(
            m.cot_th[0, :, 0], np.cos(p.theta) / np.sin(p.theta)
        )
        np.testing.assert_allclose(m.inv_r_sin[:, :, 0], 1.0 / (p.r[:, None] * np.sin(p.theta)[None, :]))
