import numpy as np
import pytest

from repro.machine.counters import (
    HardwareCounters,
    aggregate,
    synthesize_counters,
)


def list1_like_counter():
    """A counter populated with List 1's average column values."""
    return HardwareCounters(
        real_time=453.457,
        user_time=443.220,
        system_time=4.498,
        vector_time=351.678,
        instruction_count=46732455581.0,
        vector_instruction_count=13758270302.0,
        vector_element_count=3461109543510.0,
        flop_count=1642792822350.0,
        memory_mb=1106.882,
    )


class TestDerivedColumns:
    """The derived quantities must reproduce List 1's printed values
    when fed List 1's raw counters — validating our formulas against
    the ES runtime's."""

    def test_mflops(self):
        assert list1_like_counter().mflops == pytest.approx(3706.5, rel=1e-3)

    def test_mops(self):
        assert list1_like_counter().mops == pytest.approx(7883.4, rel=1e-3)

    def test_average_vector_length(self):
        assert list1_like_counter().average_vector_length == pytest.approx(
            251.564, rel=1e-4
        )

    def test_vector_operation_ratio(self):
        assert list1_like_counter().vector_operation_ratio == pytest.approx(
            99.056, abs=0.05
        )


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_counters(
            n_processes=8, flops_per_process=1e12, user_time=440.0,
            avl=251.6, vector_op_ratio=0.99,
        )
        b = synthesize_counters(
            n_processes=8, flops_per_process=1e12, user_time=440.0,
            avl=251.6, vector_op_ratio=0.99,
        )
        assert [c.flop_count for c in a] == [c.flop_count for c in b]

    def test_population_statistics(self):
        cs = synthesize_counters(
            n_processes=64, flops_per_process=1.64e12, user_time=443.0,
            avl=251.6, vector_op_ratio=0.99,
        )
        flops = np.array([c.flop_count for c in cs])
        assert flops.mean() == pytest.approx(1.64e12, rel=0.01)
        # jitter creates a List-1-like percent-level spread
        assert 0.0 < flops.std() / flops.mean() < 0.03

    def test_derived_columns_consistent(self):
        cs = synthesize_counters(
            n_processes=16, flops_per_process=1.64e12, user_time=443.0,
            avl=251.6, vector_op_ratio=0.99,
        )
        for c in cs:
            assert c.average_vector_length == pytest.approx(251.6, rel=0.05)
            assert c.vector_operation_ratio == pytest.approx(99.0, abs=0.2)
            assert c.vector_time < c.user_time <= c.real_time * 1.2


class TestAggregate:
    def test_min_max_mean_structure(self):
        cs = synthesize_counters(
            n_processes=10, flops_per_process=1e12, user_time=400.0,
            avl=250.0, vector_op_ratio=0.99,
        )
        agg = aggregate(cs)
        mn, amn, mx, amx, mean = agg["flop_count"]
        assert mn <= mean <= mx
        assert cs[amn].flop_count == mn
        assert cs[amx].flop_count == mx

    def test_includes_derived_rows(self):
        cs = synthesize_counters(
            n_processes=4, flops_per_process=1e12, user_time=400.0,
            avl=250.0, vector_op_ratio=0.99,
        )
        agg = aggregate(cs)
        for key in ("mflops", "mops", "average_vector_length", "vector_operation_ratio"):
            assert key in agg
