import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coords.spherical import sph_to_cart
from repro.coords.transforms import (
    YINYANG_MATRIX,
    other_panel_angles,
    yang_to_yin_cart,
    yin_to_yang_cart,
    yin_to_yang_sph,
    yinyang_vector_map,
)

coords = st.tuples(*[st.floats(-3, 3)] * 3)
angles = st.tuples(
    st.floats(0.05, np.pi - 0.05), st.floats(-np.pi + 0.01, np.pi - 0.01)
)


class TestMatrix:
    def test_orthogonal(self):
        np.testing.assert_allclose(YINYANG_MATRIX @ YINYANG_MATRIX.T, np.eye(3))

    def test_involution(self):
        np.testing.assert_allclose(YINYANG_MATRIX @ YINYANG_MATRIX, np.eye(3))

    def test_determinant_plus_one(self):
        """A y/z swap (det -1) composed with an x negation (det -1):
        the map is a proper rotation."""
        assert np.linalg.det(YINYANG_MATRIX) == pytest.approx(1.0)

    @given(coords)
    def test_matches_function(self, xyz):
        out = yin_to_yang_cart(*xyz)
        np.testing.assert_allclose(out, YINYANG_MATRIX @ np.array(xyz), atol=1e-14)


class TestInvolution:
    """Eq. (1): the forward and inverse maps have the same form."""

    @given(coords)
    def test_cartesian_involution(self, xyz):
        once = yin_to_yang_cart(*xyz)
        twice = yang_to_yin_cart(*once)
        np.testing.assert_allclose(twice, xyz, atol=1e-14)

    @given(coords)
    def test_isometry(self, xyz):
        out = yin_to_yang_cart(*xyz)
        assert sum(c**2 for c in out) == pytest.approx(
            sum(c**2 for c in xyz), rel=1e-12, abs=1e-14
        )

    @given(angles)
    def test_angle_involution(self, ang):
        th, ph = ang
        th1, ph1 = other_panel_angles(th, ph)
        th2, ph2 = other_panel_angles(th1, ph1)
        assert float(th2) == pytest.approx(th, abs=1e-9)
        # phi is only defined mod 2 pi
        assert np.cos(ph2 - ph) == pytest.approx(1.0, abs=1e-9)


class TestAngleMap:
    @given(st.floats(0.1, 5.0), angles)
    def test_consistent_with_cartesian(self, r, ang):
        th, ph = ang
        r2, th2, ph2 = yin_to_yang_sph(r, th, ph)
        assert float(r2) == pytest.approx(r, rel=1e-12)
        # closed form must agree with the Cartesian route
        th3, ph3 = other_panel_angles(th, ph)
        assert float(th3) == pytest.approx(float(th2), abs=1e-10)
        assert np.cos(ph3 - ph2) == pytest.approx(1.0, abs=1e-10)

    def test_yin_pole_maps_to_yang_equator(self):
        # the Yin coordinate pole (theta ~ 0) lies on the Yang equator
        th, ph = other_panel_angles(1e-9, 0.0)
        assert float(th) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_known_point(self):
        # (theta=90deg, phi=180deg) is the Yang grid's coordinate centre
        th, ph = other_panel_angles(np.pi / 2, np.pi)
        assert float(th) == pytest.approx(np.pi / 2, abs=1e-12)
        assert float(ph) == pytest.approx(0.0, abs=1e-12)


class TestVectorMap:
    @given(coords)
    def test_linear_and_involutive(self, v):
        once = yinyang_vector_map(*v)
        twice = yinyang_vector_map(*once)
        np.testing.assert_allclose(twice, v, atol=1e-14)

    def test_rotation_axis_mapping(self):
        # global z (the rotation axis) becomes Yang-local +y
        np.testing.assert_allclose(yinyang_vector_map(0.0, 0.0, 1.0), (0.0, 1.0, 0.0))

    @given(st.floats(0.1, 3.0), angles)
    def test_position_consistency(self, r, ang):
        """Mapping the position vector = mapping the point."""
        th, ph = ang
        xyz = sph_to_cart(r, th, ph)
        np.testing.assert_allclose(
            yinyang_vector_map(*xyz), yin_to_yang_cart(*xyz), atol=1e-14
        )
