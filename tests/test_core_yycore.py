import numpy as np
import pytest

from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


def make(params, **kw):
    defaults = dict(nr=7, nth=12, nph=36, params=params, dt=1e-3)
    defaults.update(kw)
    return YinYangDynamo(RunConfig(**defaults))


class TestWellBalanced:
    def test_unperturbed_state_is_exact_equilibrium(self, params):
        dyn = make(params, amp_temperature=0.0, amp_seed_field=0.0)
        for _ in range(5):
            dyn.step()
        for panel in (Panel.YIN, Panel.YANG):
            for c in dyn.state[panel].f:
                assert np.abs(c).max() == 0.0

    def test_without_subtraction_truncation_flows_appear(self, params):
        dyn = make(
            params, amp_temperature=0.0, amp_seed_field=0.0,
            subtract_base_rhs=False,
        )
        for _ in range(5):
            dyn.step()
        v = dyn.state[Panel.YIN].velocity()
        assert max(np.abs(c).max() for c in v) > 1e-6


class TestStepping:
    def test_step_advances_clock(self, params):
        dyn = make(params)
        dt = dyn.step()
        assert dt == pytest.approx(1e-3)
        assert dyn.time == pytest.approx(1e-3)
        assert dyn.step_count == 1

    def test_run_records_history(self, params):
        dyn = make(params)
        recs = dyn.run(6, record_every=2)
        assert len(recs) == 3
        assert recs[-1].step == 6

    def test_adaptive_dt_positive(self, params):
        dyn = make(params, dt=None)
        dt = dyn.step()
        assert 0.0 < dt < 0.1

    def test_remains_physical(self, params):
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(20, record_every=0)
        assert dyn.is_physical()

    def test_deterministic_given_seed(self, params):
        a = make(params, seed=7)
        b = make(params, seed=7)
        a.run(3, record_every=0)
        b.run(3, record_every=0)
        for panel in (Panel.YIN, Panel.YANG):
            for x, y in zip(a.state[panel].arrays(), b.state[panel].arrays()):
                np.testing.assert_array_equal(x, y)

    def test_different_seeds_differ(self, params):
        a = make(params, seed=7)
        b = make(params, seed=8)
        a.step()
        b.step()
        assert not np.array_equal(a.state[Panel.YIN].p, b.state[Panel.YIN].p)


class TestPhysics:
    def test_perturbation_energy_is_small_but_nonzero(self, params):
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(10, record_every=0)
        e = dyn.energies()
        assert e.kinetic > 0.0
        assert e.kinetic < 1e-2 * e.thermal

    def test_seed_field_carries_magnetic_energy(self, params):
        dyn = make(params, amp_seed_field=1e-4)
        e = dyn.energies()
        assert e.magnetic > 0.0

    def test_energy_series_shapes(self, params):
        dyn = make(params)
        dyn.run(4, record_every=1)
        t, ke, me = dyn.energy_series()
        assert t.shape == ke.shape == me.shape == (4,)
        assert np.all(np.diff(t) > 0)

    def test_timers_populated(self, params):
        dyn = make(params)
        dyn.run(2, record_every=0)
        totals = dyn.timers.totals()
        assert totals["rhs"] > 0.0
        assert totals["overset"] > 0.0
        assert totals["wall_bc"] > 0.0


class TestBoundaryEnforcement:
    def test_walls_hold_after_steps(self, params):
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(5, record_every=0)
        for panel in (Panel.YIN, Panel.YANG):
            s = dyn.state[panel]
            for c in s.f:
                assert np.all(c[0] == 0.0) and np.all(c[-1] == 0.0)
            temp = s.temperature()
            np.testing.assert_allclose(temp[0], params.t_inner, rtol=1e-12)
            np.testing.assert_allclose(temp[-1], 1.0, rtol=1e-12)

    def test_panels_agree_in_overlap(self, params):
        """After steps, sampling the same physical point from either
        panel gives consistent temperature (to interpolation accuracy)."""
        dyn = make(params, amp_temperature=1e-2)
        dyn.run(10, record_every=0)
        g = dyn.grid
        temps = {p: dyn.state[p].temperature() for p in dyn.state}
        # check at the Yang ring points: value assigned from Yin by
        # interpolation must be close to Yang's own adjacent solution
        ring = temps[Panel.YANG][:, g.to_yang.ring_ith, g.to_yang.ring_iph]
        assert np.isfinite(ring).all()
        spread = np.ptp(temps[Panel.YANG]) + 1e-30
        inner = temps[Panel.YANG][:, 1:-1, 1:-1]
        assert np.abs(ring.mean() - inner.mean()) < 0.5 * spread
