"""Unit tests for the RHS kernel layer: ``out=`` stencils,
:class:`~repro.fd.kernels.BufferPool` and
:class:`~repro.fd.kernels.DerivativeCache`."""

import numpy as np
import pytest

from repro.fd.kernels import BufferPool, DerivativeCache, StencilCoefficients
from repro.fd.stencils import (
    AXIS_PH,
    AXIS_R,
    AXIS_TH,
    diff,
    diff2,
    diff2_raw,
    diff_raw,
)
from repro.grids.component import ComponentGrid


@pytest.fixture()
def field():
    rng = np.random.default_rng(11)
    return rng.standard_normal((6, 7, 9))


class TestOutParameter:
    @pytest.mark.parametrize("op", [diff, diff2])
    @pytest.mark.parametrize("axis", [AXIS_R, AXIS_TH, AXIS_PH])
    def test_out_matches_allocating_path(self, field, op, axis):
        buf = np.empty_like(field)
        got = op(field, 0.1, axis, out=buf)
        assert got is buf
        np.testing.assert_array_equal(got, op(field, 0.1, axis))

    @pytest.mark.parametrize("op", [diff_raw, diff2_raw])
    @pytest.mark.parametrize("axis", [AXIS_R, AXIS_TH, AXIS_PH])
    def test_raw_out_matches_allocating_path(self, field, op, axis):
        buf = np.empty_like(field)
        got = op(field, axis, out=buf)
        assert got is buf
        np.testing.assert_array_equal(got, op(field, axis))

    @pytest.mark.parametrize("op", [diff, diff2])
    def test_aliased_out_raises(self, field, op):
        with pytest.raises(ValueError, match="alias"):
            op(field, 0.1, AXIS_R, out=field)

    @pytest.mark.parametrize("op", [diff_raw, diff2_raw])
    def test_raw_aliased_out_raises(self, field, op):
        with pytest.raises(ValueError, match="alias"):
            op(field, AXIS_R, out=field)

    def test_overlapping_view_raises(self, field):
        with pytest.raises(ValueError, match="alias"):
            diff(field[1:], 0.1, AXIS_R, out=field[:-1])

    def test_shape_mismatch_raises(self, field):
        with pytest.raises(ValueError, match="shape"):
            diff(field, 0.1, AXIS_R, out=np.empty((3, 3, 3)))


class TestRawNumerators:
    """`diff_raw`/`diff2_raw` are the spacing-free numerators: the
    normalised stencils recover from them by one scalar multiply."""

    @pytest.mark.parametrize("axis", [AXIS_R, AXIS_TH, AXIS_PH])
    def test_diff_raw_scaling(self, field, axis):
        h = 0.37
        np.testing.assert_allclose(
            diff_raw(field, axis) / (2.0 * h), diff(field, h, axis), rtol=1e-13
        )

    @pytest.mark.parametrize("axis", [AXIS_R, AXIS_TH, AXIS_PH])
    def test_diff2_raw_scaling(self, field, axis):
        h = 0.37
        np.testing.assert_allclose(
            diff2_raw(field, axis) / h**2, diff2(field, h, axis), rtol=1e-13
        )

    @pytest.mark.parametrize("op", [diff_raw, diff2_raw])
    def test_last_axis_noncontiguous_fallback(self, op):
        """The flattened-view fast path requires C-contiguity; strided
        inputs must take the slice path and agree exactly."""
        rng = np.random.default_rng(5)
        base = rng.standard_normal((6, 7, 18))
        strided = base[:, :, ::2]
        assert not strided.flags.c_contiguous
        out = np.empty(strided.shape)
        np.testing.assert_array_equal(
            op(strided, AXIS_PH, out=out), op(np.ascontiguousarray(strided), AXIS_PH)
        )


class TestBufferPool:
    def test_take_allocates_then_reuses(self):
        pool = BufferPool()
        a = pool.take((4, 5))
        assert pool.stats() == {"allocated": 1, "reused": 0, "free": 0}
        pool.give(a)
        b = pool.take((4, 5))
        assert b is a
        assert pool.stats() == {"allocated": 1, "reused": 1, "free": 0}

    def test_distinct_shapes_do_not_mix(self):
        pool = BufferPool()
        a = pool.take((4, 5))
        pool.give(a)
        b = pool.take((5, 4))
        assert b is not a
        assert pool.allocated == 2

    def test_dtype_keys_do_not_mix(self):
        pool = BufferPool()
        a = pool.take((3,), dtype=np.float64)
        pool.give(a)
        b = pool.take((3,), dtype=np.float32)
        assert b.dtype == np.float32
        assert b is not a


class TestDerivativeCache:
    def test_hit_miss_accounting(self, field):
        cache = DerivativeCache()
        d_first = cache.diff(field, 0.1, AXIS_R)
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}
        d_again = cache.diff(field, 0.1, AXIS_R)
        assert d_again is d_first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        # different axis / order / field are distinct entries
        cache.diff(field, 0.1, AXIS_TH)
        cache.diff2(field, 0.1, AXIS_R)
        cache.diff_raw(field, AXIS_R)
        cache.diff2_raw(field, AXIS_R)
        assert cache.stats() == {"hits": 1, "misses": 5, "entries": 5}

    def test_raw_and_normalised_are_distinct_entries(self, field):
        cache = DerivativeCache()
        d_norm = cache.diff(field, 0.5, AXIS_R)
        d_raw = cache.diff_raw(field, AXIS_R)
        assert cache.misses == 2
        np.testing.assert_allclose(d_raw, d_norm, rtol=1e-13)  # h = 0.5: 2h = 1

    def test_reset_clears_entries_and_recycles(self, field):
        pool = BufferPool()
        cache = DerivativeCache(pool=pool)
        d = cache.diff_raw(field, AXIS_R)
        assert pool.allocated == 1 and pool.free_count == 0
        cache.reset()
        assert cache.size == 0
        assert pool.free_count == 1
        # same request after reset is a fresh miss into the same buffer
        d2 = cache.diff_raw(field, AXIS_R)
        assert d2 is d
        assert cache.stats()["misses"] == 2

    def test_identity_keyed_fields(self, field):
        cache = DerivativeCache()
        copy = field.copy()
        cache.diff_raw(field, AXIS_R)
        cache.diff_raw(copy, AXIS_R)
        assert cache.stats() == {"hits": 0, "misses": 2, "entries": 2}


class TestStencilCoefficients:
    def test_folded_factors(self):
        patch = ComponentGrid.build(6, 8, 10)
        c = StencilCoefficients(patch)
        m = patch.metric
        assert c.sr == pytest.approx(1.0 / (2.0 * patch.dr))
        np.testing.assert_allclose(c.grad_th, m.inv_r / (2.0 * patch.dtheta))
        np.testing.assert_allclose(c.grad_ph, m.inv_r_sin / (2.0 * patch.dphi))
        np.testing.assert_allclose(c.lap_r1, m.two_inv_r / (2.0 * patch.dr))
        np.testing.assert_allclose(c.lap_th2, m.inv_r2 / patch.dtheta**2)
        np.testing.assert_allclose(
            c.lap_th1, m.inv_r2 * m.cot_th / (2.0 * patch.dtheta)
        )
        np.testing.assert_allclose(c.lap_ph2, m.inv_r2_sin2 / patch.dphi**2)
