import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid
from repro.parallel.decomposition import PanelDecomposition
from repro.parallel.overset_comm import OversetExchanger
from repro.parallel.simmpi import SimMPI


def run_overset_world(grid, pth, pph, build_fields, vector=False):
    """Each rank holds its restriction of a global field pair, runs the
    distributed overset exchange, and returns its local arrays."""
    decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, pth, pph)
    nper = decomp.nranks

    def prog(world):
        panel_index = 0 if world.rank < nper else 1
        panel = Panel.YIN if panel_index == 0 else Panel.YANG
        panel_comm = world.split(color=panel_index, key=world.rank)
        sub = decomp.subdomain(panel_comm.rank)
        ex = OversetExchanger(grid, decomp, world, panel_index, panel_comm.rank)
        fields = build_fields(panel)
        sl = sub.local_extent_global()
        local = tuple(np.ascontiguousarray(f[:, sl[0], sl[1]]) for f in fields)
        if vector:
            ex.exchange_vector(local)
        else:
            ex.exchange_scalar(local[0])
        return world.rank, panel, sub, local

    return SimMPI.run(2 * nper, prog)


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(5, 14, 40)


class TestScalarExchange:
    @pytest.mark.parametrize("layout", [(1, 1), (1, 2), (2, 2)])
    def test_matches_serial_interpolation(self, grid, layout):
        f = grid.sample_scalar(lambda r, th, ph: r * np.sin(th) ** 2 * np.cos(ph))
        serial = {p: f[p].copy() for p in f}
        grid.apply_overset_scalar(serial[Panel.YIN], serial[Panel.YANG])

        results = run_overset_world(grid, *layout, lambda p: (f[p].copy(),))
        for _, panel, sub, local in results:
            sl = sub.global_slices()
            oth, oph = sub.owned_local()
            np.testing.assert_array_equal(
                local[0][:, oth, oph], serial[panel][:, sl[0], sl[1]]
            )

    def test_non_ring_points_untouched(self, grid):
        rng = np.random.default_rng(0)
        fy = rng.normal(size=grid.shape)
        fe = rng.normal(size=grid.shape)
        fields = {Panel.YIN: fy, Panel.YANG: fe}
        results = run_overset_world(grid, 1, 2, lambda p: (fields[p].copy(),))
        fd = grid.yin.fd_mask()
        for _, panel, sub, local in results:
            sl = sub.global_slices()
            oth, oph = sub.owned_local()
            owned = local[0][:, oth, oph]
            mask = fd[sl]
            np.testing.assert_array_equal(
                owned[:, mask], fields[panel][:, sl[0], sl[1]][:, mask]
            )


class TestVectorExchange:
    def test_matches_serial_vector_interpolation(self, grid):
        rng = np.random.default_rng(1)
        comps = {
            p: tuple(rng.normal(size=grid.shape) for _ in range(3))
            for p in (Panel.YIN, Panel.YANG)
        }
        serial = {p: tuple(c.copy() for c in comps[p]) for p in comps}
        grid.apply_overset_vector(serial[Panel.YIN], serial[Panel.YANG])

        results = run_overset_world(
            grid, 2, 2, lambda p: tuple(c.copy() for c in comps[p]), vector=True
        )
        for _, panel, sub, local in results:
            sl = sub.global_slices()
            oth, oph = sub.owned_local()
            for lc, sc in zip(local, serial[panel]):
                np.testing.assert_array_equal(lc[:, oth, oph], sc[:, sl[0], sl[1]])


class TestPlanStructure:
    def test_every_ring_point_has_exactly_one_receptor_owner(self, grid):
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, 2, 3)
        interp = grid.to_yang
        owners = decomp.owner_of(interp.ring_ith, interp.ring_iph)
        assert owners.min() >= 0 and owners.max() < decomp.nranks

    def test_world_size_consistency(self, grid):
        decomp = PanelDecomposition(grid.yin.nth, grid.yin.nph, 1, 2)

        def prog(world):
            panel_index = 0 if world.rank < 2 else 1
            pc = world.split(color=panel_index, key=world.rank)
            ex = OversetExchanger(grid, decomp, world, panel_index, pc.rank)
            # each direction plan exists
            return set(ex.plans) == {0, 1}

        assert all(SimMPI.run(4, prog))
