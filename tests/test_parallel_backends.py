"""Launcher-backend registry: probing, selection, fallback, errors."""

import warnings

import pytest

from repro.parallel import backends as pb
from repro.parallel.procmpi import ProcMPI
from repro.parallel.simmpi import SimMPI
from repro.parallel.sockmpi import SockMPI

_MPI4PY_AVAILABLE = pb.probe("mpi4py").available


class TestProbe:
    def test_detect_covers_registry_in_order(self):
        infos = pb.detect()
        assert [i.name for i in infos] == list(pb.BACKENDS)

    def test_builtin_backends_probe_available(self):
        avail = pb.available_backends()
        # thread is the unconditional fallback; process and socket only
        # need shared memory and a loopback socket.
        assert avail[:1] == ["thread"]
        assert {"process", "socket"} <= set(avail)

    def test_probe_reports_capabilities(self):
        sock = pb.probe("socket")
        assert sock.capabilities.cross_host
        assert sock.capabilities.picklable_fn
        assert "cross-host" in sock.capabilities.summary()
        thread = pb.probe("thread")
        assert not thread.capabilities.picklable_fn
        assert "closures ok" in thread.capabilities.summary()

    def test_probe_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown launcher backend"):
            pb.probe("rdma")

    def test_probe_failure_is_not_fatal(self, monkeypatch):
        monkeypatch.setitem(pb.BACKENDS, "broken", "repro.parallel.no_such_module")
        info = pb.probe("broken")
        assert not info.available
        assert "probe failed" in info.detail

    def test_mpi4py_probe_is_actionable_when_missing(self):
        info = pb.probe("mpi4py")
        if not info.available:
            assert "mpi4py" in info.detail


class TestSelection:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(pb.LAUNCHER_ENV, raising=False)
        assert pb.requested() == "thread"
        assert pb.select() == "thread"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(pb.LAUNCHER_ENV, "socket")
        assert pb.requested() == "socket"
        assert pb.select() == "socket"

    def test_unknown_env_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(pb.LAUNCHER_ENV, "rdma")
        with pytest.warns(RuntimeWarning, match="rdma"):
            assert pb.requested() == "thread"

    def test_explicit_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown launcher backend"):
            pb.select("rdma")

    @pytest.mark.skipif(_MPI4PY_AVAILABLE, reason="mpi4py is installed here")
    def test_unavailable_selection_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert pb.select("mpi4py") == "thread"

    def test_available_selection_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert pb.select("process") == "process"


class TestGetBackend:
    def test_resolves_launchers(self):
        assert pb.get_backend("thread") is SimMPI
        assert pb.get_backend("process") is ProcMPI
        assert isinstance(pb.get_backend("socket"), SockMPI)

    def test_opts_forwarded_to_open_launcher(self):
        launcher = pb.get_backend("socket", bind="127.0.0.1:0", spawn=False)
        assert launcher.bind == "127.0.0.1:0"
        assert launcher.spawn is False

    def test_unexpected_opts_rejected(self):
        with pytest.raises(TypeError, match="thread launcher takes no options"):
            pb.get_backend("thread", bogus=1)

    def test_unknown_names_registry_and_probe_command(self):
        with pytest.raises(ValueError) as exc:
            pb.get_backend("rdma")
        assert "repro-paper backends" in str(exc.value)
        assert "thread" in str(exc.value)

    @pytest.mark.skipif(_MPI4PY_AVAILABLE, reason="mpi4py is installed here")
    def test_unavailable_raises_backend_unavailable(self):
        with pytest.raises(pb.BackendUnavailable, match="unavailable"):
            pb.get_backend("mpi4py")
        assert issubclass(pb.BackendUnavailable, ValueError)
