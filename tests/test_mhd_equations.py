import numpy as np
import pytest

from repro.grids.component import ComponentGrid, Panel
from repro.mhd.equations import PanelEquations, rotation_vector_field
from repro.mhd.initial import conduction_state
from repro.mhd.parameters import MHDParameters
from repro.mhd.state import MHDState


@pytest.fixture(scope="module")
def setup():
    params = MHDParameters.laptop_demo()
    grid = ComponentGrid.build(9, 12, 36)
    eqs = PanelEquations(grid, params, (0.0, 0.0, params.omega))
    return grid, params, eqs


class TestRotationField:
    def test_constant_magnitude(self, setup):
        grid, params, eqs = setup
        mag = np.sqrt(sum(np.asarray(c) ** 2 for c in eqs.omega))
        np.testing.assert_allclose(mag, params.omega, atol=1e-12)

    def test_z_axis_components(self, setup):
        """Omega zhat: (Omega cos(theta), -Omega sin(theta), 0)."""
        grid, params, eqs = setup
        wr, wth, wph = eqs.omega
        np.testing.assert_allclose(
            wr[0, :, 0], params.omega * np.cos(grid.theta), atol=1e-12
        )
        np.testing.assert_allclose(
            wth[0, :, 0], -params.omega * np.sin(grid.theta), atol=1e-12
        )
        np.testing.assert_allclose(wph, 0.0, atol=1e-12)

    def test_yang_panel_same_physical_axis(self):
        """Yin with (0,0,w) and Yang with (0,w,0) describe the same
        physical rotation vector: rotating Yang's field into the global
        frame recovers Yin's values at the shared physical points."""
        params = MHDParameters.laptop_demo()
        grid = ComponentGrid.build(5, 12, 36, panel=Panel.YANG)
        w = rotation_vector_field(grid, (0.0, params.omega, 0.0))
        # convert Yang spherical components -> Yang Cartesian -> global
        from repro.coords.spherical import sph_vector_to_cart
        from repro.coords.transforms import yinyang_vector_map

        th, ph = np.meshgrid(grid.theta, grid.phi, indexing="ij")
        vx, vy, vz = sph_vector_to_cart(
            w[0][0], w[1][0], w[2][0], th, ph
        )
        gx, gy, gz = yinyang_vector_map(vx, vy, vz)
        np.testing.assert_allclose(gx, 0.0, atol=1e-12)
        np.testing.assert_allclose(gy, 0.0, atol=1e-12)
        np.testing.assert_allclose(gz, params.omega, atol=1e-12)


class TestSubsidiaryFields:
    def test_b_is_curl_a(self, setup):
        grid, params, eqs = setup
        rng = np.random.default_rng(0)
        state = MHDState.zeros(grid.shape)
        state.rho[:] = 1.0
        state.p[:] = 1.0
        for c in state.a:
            c[:] = rng.normal(size=grid.shape)
        b = eqs.magnetic_field(state)
        expected = eqs.ops.curl(state.a)
        for x, y in zip(b, expected):
            np.testing.assert_array_equal(x, y)

    def test_ideal_ohms_law(self, setup):
        """E = -v x B + eta j (eq. 6)."""
        grid, params, eqs = setup
        rng = np.random.default_rng(1)
        v = tuple(rng.normal(size=grid.shape) for _ in range(3))
        b = tuple(rng.normal(size=grid.shape) for _ in range(3))
        j = tuple(rng.normal(size=grid.shape) for _ in range(3))
        e = eqs.electric_field(v, b, j)
        vxb = eqs.ops.cross(v, b)
        for i in range(3):
            np.testing.assert_allclose(e[i], -vxb[i] + params.eta * j[i], atol=1e-13)


class TestRHSStructure:
    def test_static_unmagnetised_state_evolves_only_through_imbalance(self, setup):
        """With v = 0 and A = 0: continuity and induction RHS vanish
        identically; only the momentum/pressure truncation residual of
        the conduction profile survives."""
        grid, params, eqs = setup
        state = conduction_state(grid, params)
        k = eqs.rhs(state)
        np.testing.assert_allclose(k.rho, 0.0, atol=1e-12)
        for c in (k.ar, k.ath, k.aph):
            np.testing.assert_allclose(c, 0.0, atol=1e-12)
        # tangential momentum balance holds (profile is radial)
        interior = (slice(1, -1),) * 3
        assert np.abs(k.fth[interior]).max() < 1e-8
        assert np.abs(k.fph[interior]).max() < 1e-8

    def test_hydrostatic_residual_converges(self):
        """The radial momentum residual of the analytic balance shrinks
        at second order with radial resolution."""
        params = MHDParameters.laptop_demo()
        res = []
        for nr in (11, 21, 41):
            grid = ComponentGrid.build(nr, 10, 30)
            eqs = PanelEquations(grid, params, (0.0, 0.0, params.omega))
            k = eqs.rhs(conduction_state(grid, params))
            res.append(np.abs(k.fr[1:-1]).max())
        # monotone decrease, with the refinement ratio approaching the
        # asymptotic 4x (the steep inner boundary layer delays it)
        assert res[0] > res[1] > res[2]
        assert res[1] / res[2] > 2.5

    def test_coriolis_force_direction(self, setup):
        """A uniform azimuthal flow in the rotating frame feels a radial/
        latitudinal Coriolis force 2 rho v x Omega, no azimuthal one."""
        grid, params, eqs = setup
        state = conduction_state(grid, params)
        vph = 0.01
        state.fph[:] = state.rho * vph
        k = eqs.rhs(state)
        k0 = eqs.rhs(conduction_state(grid, params))
        interior = (slice(2, -2),) * 3
        dfr = (k.fr - k0.fr)[interior]
        # v x Omega for v = vph phhat, Omega = w zhat:
        # phhat x zhat = ... radial part = vph w sin(theta) > 0 (outward)
        assert dfr.mean() > 0.0

    def test_rhs_returns_new_state(self, setup):
        grid, params, eqs = setup
        state = conduction_state(grid, params)
        k = eqs.rhs(state)
        assert k is not state
        assert k.shape == state.shape

    def test_ohmic_heating_nonnegative(self, setup):
        grid, params, eqs = setup
        rng = np.random.default_rng(2)
        state = conduction_state(grid, params)
        for c in state.a:
            c += 0.1 * rng.normal(size=grid.shape)
        q = eqs.ohmic_heating(state)
        assert q.min() >= 0.0

    def test_energy_equation_heating_raises_pressure(self, setup):
        """Pure Joule heating (v = 0) gives dp/dt = (gamma-1) eta j^2 +
        conduction; with a uniform-T state the conduction term is tiny
        and dp/dt must be positive where j is strong."""
        grid, params, eqs = setup
        state = MHDState.zeros(grid.shape)
        state.rho[:] = 1.0
        state.p[:] = 1.0  # T = 1 uniformly: no conduction of T
        rng = np.random.default_rng(3)
        for c in state.a:
            c[:] = 0.1 * rng.normal(size=grid.shape)
        k = eqs.rhs(state)
        j2 = eqs.ops.norm2(eqs.current_density(eqs.magnetic_field(state)))
        interior = (slice(2, -2),) * 3
        strong = j2[interior] > np.percentile(j2[interior], 90)
        assert np.all(k.p[interior][strong] > 0.0)


class TestFusedMatchesReference:
    """Property test for the PR acceptance criterion: the
    derivative-cached fused RHS agrees with the reference per-operator
    path to <= 1e-13 (relative to each field's magnitude) on randomized
    states, for all three patch flavours."""

    CASES = {
        "yin": (Panel.YIN, (9, 12, 36)),
        "yang": (Panel.YANG, (9, 12, 36)),
        "latlon": (None, (9, 14, 20)),
    }

    @staticmethod
    def _build(kind):
        from repro.grids.latlon import LatLonGrid

        params = MHDParameters.laptop_demo()
        panel, (nr, nth, nph) = TestFusedMatchesReference.CASES[kind]
        if panel is None:
            patch = LatLonGrid.build(nr, nth, nph, ri=params.ri, ro=params.ro)
            omega = (0.0, 0.0, params.omega)
        else:
            patch = ComponentGrid.build(nr, nth, nph, panel=panel)
            omega = (
                (0.0, 0.0, params.omega)
                if panel is Panel.YIN
                else (0.0, params.omega, 0.0)
            )
        return patch, params, omega

    @staticmethod
    def _random_state(shape, seed):
        rng = np.random.default_rng(seed)

        def noise(base):
            return base + 0.3 * rng.standard_normal(shape)

        return MHDState(
            rho=noise(1.0), fr=noise(0.0), fth=noise(0.0), fph=noise(0.0),
            p=noise(1.0), ar=noise(0.0), ath=noise(0.0), aph=noise(0.0),
        )

    @pytest.mark.parametrize("kind", ["yin", "yang", "latlon"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fused_equals_reference(self, kind, seed):
        from repro.mhd.state import FIELD_NAMES

        patch, params, omega = self._build(kind)
        fused = PanelEquations(patch, params, omega, fused=True)
        reference = PanelEquations(patch, params, omega, fused=False)
        state = self._random_state(patch.shape, seed)
        # two fused evaluations: the second exercises the steady-state
        # buffer-pool path (recycled, not freshly zeroed, memory)
        fused.rhs(state)
        kf, kr = fused.rhs(state), reference.rhs(state)
        for name in FIELD_NAMES:
            a, b = getattr(kf, name), getattr(kr, name)
            scale = float(np.max(np.abs(b)))
            assert np.max(np.abs(a - b)) <= 1e-13 * max(scale, 1.0), name

    def test_fused_flag_selects_path(self):
        patch, params, omega = self._build("yin")
        eq = PanelEquations(patch, params, omega)
        assert eq.fused  # the cached kernel is the default
        state = self._random_state(patch.shape, 7)
        via_flag = eq.rhs(state)
        direct = eq.rhs_fused(state)
        from repro.mhd.state import FIELD_NAMES

        for name in FIELD_NAMES:
            np.testing.assert_array_equal(
                getattr(via_flag, name), getattr(direct, name)
            )
