"""System-wide randomised invariants (hypothesis).

Cross-cutting properties that individual module tests don't pin down:
grid construction over random resolutions, idempotence of the full
boundary enforcement, interpolation bounds on random smooth fields, and
physical-frame consistency of panel-pair fields.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RunConfig, YinYangDynamo
from repro.grids.yinyang import YinYangGrid
from repro.mhd.parameters import MHDParameters


grid_sizes = st.tuples(
    st.integers(5, 9),        # nr
    st.integers(12, 22),      # nth
    st.integers(36, 66),      # nph
)


class TestGridConstruction:
    @settings(max_examples=10, deadline=None)
    @given(grid_sizes)
    def test_random_resolutions_build_and_cover(self, size):
        nr, nth, nph = size
        g = YinYangGrid(nr, nth, nph)
        assert g.coverage_check(2000) == 1.0
        assert g.yin.n_ring == 2 * nph + 2 * (nth - 2)

    @settings(max_examples=10, deadline=None)
    @given(grid_sizes, st.integers(0, 10))
    def test_overset_bounded_by_donor_range(self, size, seed):
        """Bilinear interpolation cannot overshoot the donor's range."""
        nr, nth, nph = size
        g = YinYangGrid(nr, nth, nph)
        rng = np.random.default_rng(seed)
        fy = rng.uniform(-1.0, 2.0, g.shape)
        fe = rng.uniform(-1.0, 2.0, g.shape)
        lo = min(fy.min(), fe.min())
        hi = max(fy.max(), fe.max())
        g.apply_overset_scalar(fy, fe)
        assert fy.min() >= lo - 1e-12 and fy.max() <= hi + 1e-12
        assert fe.min() >= lo - 1e-12 and fe.max() <= hi + 1e-12


class TestEnforcementIdempotence:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 100))
    def test_enforce_twice_equals_once(self, seed):
        """The combined overset + wall enforcement is a projection."""
        cfg = RunConfig(
            nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
            amp_temperature=2e-2, seed=seed,
        )
        dyn = YinYangDynamo(cfg)
        dyn.step(1e-3)
        dyn.enforce(dyn.state)
        snap = {
            p: [a.copy() for a in s.arrays()] for p, s in dyn.state.items()
        }
        dyn.enforce(dyn.state)
        for p, s in dyn.state.items():
            for a, b in zip(s.arrays(), snap[p]):
                np.testing.assert_array_equal(a, b)


class TestFrameConsistency:
    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(0.3, np.pi - 0.3), st.floats(-3.0, 3.0),
        st.tuples(st.floats(-2, 2), st.floats(-2, 2), st.floats(-2, 2)),
    )
    def test_global_vector_same_from_either_panel(self, th, ph, vec):
        """A physical vector sampled at a physical point has the same
        global Cartesian components whether stored via Yin or Yang."""
        from repro.coords.spherical import cart_vector_to_sph, sph_vector_to_cart
        from repro.coords.transforms import other_panel_angles, yinyang_vector_map

        vx, vy, vz = vec
        # route 1: direct (Yin frame = global)
        vr1, vth1, vph1 = cart_vector_to_sph(vx, vy, vz, th, ph)
        back1 = sph_vector_to_cart(vr1, vth1, vph1, th, ph)
        # route 2: through the Yang frame
        th_e, ph_e = other_panel_angles(th, ph)
        wx, wy, wz = yinyang_vector_map(vx, vy, vz)
        vr2, vth2, vph2 = cart_vector_to_sph(wx, wy, wz, th_e, ph_e)
        we = sph_vector_to_cart(vr2, vth2, vph2, th_e, ph_e)
        back2 = yinyang_vector_map(*we)
        np.testing.assert_allclose(back1, (vx, vy, vz), atol=1e-10)
        np.testing.assert_allclose(
            [float(c) for c in back2], (vx, vy, vz), atol=1e-10
        )

    @settings(max_examples=6, deadline=None)
    @given(st.integers(1, 7))
    def test_synthetic_columns_mode_always_recovered(self, m):
        from repro.viz.columns import column_profile, synthetic_columns

        grid = YinYangGrid(7, 20, 58)
        states = synthetic_columns(grid, m=m)
        census = column_profile(grid, states, nphi=max(128, 32 * m))
        assert census.n_cyclonic == m
        assert census.n_anticyclonic == m


class TestSolverInvariants:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 50), st.floats(5e-4, 2e-3))
    def test_short_runs_stay_physical(self, seed, dt):
        cfg = RunConfig(
            nr=7, nth=12, nph=36, params=MHDParameters.laptop_demo(),
            amp_temperature=1e-2, seed=seed, dt=float(dt),
        )
        dyn = YinYangDynamo(cfg)
        dyn.run(5, record_every=0)
        assert dyn.is_physical()
        e = dyn.energies()
        assert e.thermal > 0 and e.mass > 0

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 50))
    def test_mass_drift_tiny_over_short_runs(self, seed):
        cfg = RunConfig(
            nr=9, nth=12, nph=36, params=MHDParameters.laptop_demo(),
            amp_temperature=1e-2, seed=seed, dt=1e-3,
        )
        dyn = YinYangDynamo(cfg)
        m0 = dyn.energies().mass
        dyn.run(10, record_every=0)
        assert abs(dyn.energies().mass - m0) / m0 < 5e-3
