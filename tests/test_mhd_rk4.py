import numpy as np
import pytest

from repro.mhd.rk4 import rk4_scalar, rk4_step


class ScalarSystem:
    """dy/dt = lambda y on a 'state' that is a plain float in a box."""

    def __init__(self, lam):
        self.lam = lam
        self.enforced = 0

    def rhs(self, y):
        return self.lam * y

    def enforce(self, y):
        self.enforced += 1

    @staticmethod
    def axpy(y, a, k):
        return y + a * k


class TestOrder:
    def test_fourth_order_convergence(self):
        """Global error of exp-growth integration shrinks ~ 16x per
        halving of dt."""
        lam = -1.3
        errs = []
        for n in (20, 40):
            sys = ScalarSystem(lam)
            y, dt = 1.0, 1.0 / n
            for _ in range(n):
                y = rk4_step(sys, y, dt)
            errs.append(abs(y - np.exp(lam)))
        assert errs[0] / errs[1] > 12.0

    def test_scalar_helper_matches_closed_form_coefficients(self):
        """One RK4 step on y' = y from 1 equals the quartic Taylor
        polynomial of exp(dt)."""
        dt = 0.3
        y = rk4_scalar(lambda t, v: v, 0.0, 1.0, dt)
        taylor = 1 + dt + dt**2 / 2 + dt**3 / 6 + dt**4 / 24
        assert y == pytest.approx(taylor, rel=1e-14)

    def test_time_dependent_rhs(self):
        """y' = t integrates exactly (polynomial of degree 1 in t)."""
        y, t, dt = 0.0, 0.0, 0.1
        for _ in range(10):
            y = rk4_scalar(lambda tt, vv: tt, t, y, dt)
            t += dt
        assert y == pytest.approx(0.5, rel=1e-12)


class TestEnforcement:
    def test_bc_applied_each_stage_and_result(self):
        sys = ScalarSystem(0.0)
        rk4_step(sys, 1.0, 0.1)
        # initial + 3 stage states + final
        assert sys.enforced == 5

    def test_linearity(self):
        """RK4 is linear: step(a y) = a step(y) for linear systems."""
        sys = ScalarSystem(0.7)
        y1 = rk4_step(sys, 1.0, 0.05)
        y3 = rk4_step(sys, 3.0, 0.05)
        assert y3 == pytest.approx(3.0 * y1, rel=1e-14)


class TestStateIntegration:
    def test_mhd_state_decay(self):
        """Integrate du/dt = -u on every field of an MHDState."""
        from repro.mhd.state import MHDState

        class Decay:
            def rhs(self, s):
                out = s.copy()
                return out.scale(-1.0)

            def enforce(self, s):
                pass

            @staticmethod
            def axpy(s, a, k):
                return s.axpy(a, k)

        rng = np.random.default_rng(0)
        s = MHDState(*(rng.normal(size=(3, 3, 3)) for _ in range(8)))
        s0 = s.copy()
        sys = Decay()
        dt, n = 0.05, 20
        for _ in range(n):
            s = rk4_step(sys, s, dt)
        factor = np.exp(-dt * n)
        for a, b in zip(s.arrays(), s0.arrays()):
            np.testing.assert_allclose(a, b * factor, rtol=1e-7)
