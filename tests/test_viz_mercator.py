import pytest

from repro.grids.dissection import overlap_fraction
from repro.viz.mercator import (
    ascii_sphere_map,
    coverage_fractions,
    mercator_rectangle,
    overlap_map,
    panel_mask_lonlat,
)


class TestMasks:
    def test_shapes(self):
        yin, yang = panel_mask_lonlat(30, 60)
        assert yin.shape == yang.shape == (30, 60)

    def test_yin_is_equatorial_band(self):
        yin, _ = panel_mask_lonlat(90, 180)
        # equatorial row fully inside the longitude span
        eq = yin[45]
        assert eq.sum() == pytest.approx(0.75 * 180, abs=2)
        # polar rows not in Yin at all
        assert not yin[0].any() and not yin[-1].any()

    def test_yang_covers_poles(self):
        _, yang = panel_mask_lonlat(90, 180)
        assert yang[0].all()
        assert yang[-1].all()


class TestOverlap:
    def test_every_cell_covered(self):
        cover = overlap_map(60, 120)
        assert cover.min() >= 1

    def test_double_coverage_exists(self):
        cover = overlap_map(60, 120)
        assert (cover == 2).any()

    def test_area_fractions_match_analytic(self):
        covered, doubled = coverage_fractions(360, 720)
        assert covered == pytest.approx(1.0)
        assert doubled == pytest.approx(overlap_fraction(), abs=0.002)


class TestAsciiMap:
    def test_characters(self):
        art = ascii_sphere_map(12, 36)
        assert set(art) <= set("ne#\n")
        assert "#" in art  # overlap visible

    def test_no_uncovered_cells(self):
        assert "?" not in ascii_sphere_map(20, 60)

    def test_dimensions(self):
        art = ascii_sphere_map(10, 40)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)


class TestRectangle:
    def test_paper_extents(self):
        """Section II: 90 deg around the equator, 270 deg in longitude."""
        lon0, lon1, lat0, lat1 = mercator_rectangle()
        assert lon1 - lon0 == pytest.approx(270.0)
        assert lat1 - lat0 == pytest.approx(90.0)
        assert lat1 == pytest.approx(45.0)
