import pytest

from repro.machine.network import CrossbarNetwork
from repro.machine.node import ProcessorNode, memory_per_process_bytes, placement
from repro.machine.specs import EARTH_SIMULATOR


@pytest.fixture()
def net():
    return CrossbarNetwork(EARTH_SIMULATOR)


class TestMessageTime:
    def test_latency_floor(self, net):
        t = net.message_time(0, internode=True)
        assert t == pytest.approx(EARTH_SIMULATOR.mpi_latency_us * 1e-6)

    def test_bandwidth_term(self, net):
        small = net.message_time(1e3, internode=True)
        big = net.message_time(1e9, internode=True)
        assert big > 100 * small
        # asymptotic rate ~ 12.3 GB/s
        assert big == pytest.approx(1e9 / (12.3e9), rel=0.2)

    def test_intranode_faster(self, net):
        nbytes = 1e6
        assert net.message_time(nbytes, internode=False) < net.message_time(
            nbytes, internode=True
        )

    def test_port_sharing_divides_bandwidth(self, net):
        nbytes = 1e8
        alone = net.message_time(nbytes, internode=True, sharing=1)
        crowded = net.message_time(nbytes, internode=True, sharing=8)
        assert crowded > 6 * alone

    def test_exchange_time_sums(self, net):
        msgs = [(1e6, True), (1e6, False)]
        total = net.exchange_time(msgs)
        assert total == pytest.approx(
            net.message_time(1e6, internode=True)
            + net.message_time(1e6, internode=False)
        )

    def test_overlap_discount(self, net):
        msgs = [(1e6, True)]
        assert net.exchange_time(msgs, overlap=0.5) == pytest.approx(
            0.5 * net.exchange_time(msgs)
        )


class TestNeighbourLocality:
    def test_wide_rows_make_ns_internode(self, net):
        f = net.internode_fraction_of_neighbours(8, 64)
        # east/west mostly on-node, north/south off-node
        assert 0.5 < f < 0.6

    def test_narrow_rows_keep_more_on_node(self, net):
        wide = net.internode_fraction_of_neighbours(8, 64)
        narrow = net.internode_fraction_of_neighbours(8, 4)
        assert narrow < wide


class TestNodeModel:
    def test_peak(self):
        node = ProcessorNode(EARTH_SIMULATOR, 0)
        assert node.peak_gflops == pytest.approx(64.0)

    def test_memory_fit(self):
        node = ProcessorNode(EARTH_SIMULATOR, 0)
        assert node.fits(1 * 2**30, 8)  # 8 GB total of 16
        assert not node.fits(3 * 2**30, 8)

    def test_placement_fills_nodes(self):
        pl = placement(20, EARTH_SIMULATOR)
        assert pl[0] == (0, 0)
        assert pl[7] == (0, 7)
        assert pl[8] == (1, 0)
        assert pl[19] == (2, 3)

    def test_placement_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            placement(6000, EARTH_SIMULATOR)

    def test_memory_estimate_scales(self):
        a = memory_per_process_bytes(255, 20, 28)
        b = memory_per_process_bytes(511, 20, 28)
        assert b == pytest.approx(2 * a, rel=0.01)
