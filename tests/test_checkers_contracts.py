"""Runtime shape contracts: the decoration-time gate, the always-on
wrapper's argument/return/binding checks, state-like bundles, and the
strict MHDState dtype check."""

import numpy as np
import pytest

from repro.checkers.contracts import (
    ContractViolation,
    apply_contract,
    contract,
    contracts_enabled,
)
from repro.checkers.shapes import Float32, Float64


class TestGate:
    def test_disabled_returns_function_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert not contracts_enabled()

        def f(x: Float64["n"]) -> Float64["n"]:
            return x

        assert contract(f) is f  # literally zero overhead

    def test_enabled_wraps(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()

        def f(x: Float64["n"]) -> Float64["n"]:
            return x

        g = contract(f)
        assert g is not f and g.__repro_contract__

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CONTRACTS", value)
        assert not contracts_enabled()


class TestWrapper:
    def test_valid_call_passes_through(self):
        @apply_contract
        def f(x: Float64["n"], y: Float64["n"]) -> Float64["n"]:
            return x + y

        out = f(np.ones(4), np.ones(4))
        assert out.shape == (4,)

    def test_symbol_binding_shared_across_arguments(self):
        @apply_contract
        def f(x: Float64["n"], y: Float64["n"]):
            return x + y[: x.size]

        with pytest.raises(ContractViolation, match="'n' = 4"):
            f(np.ones(4), np.ones(5))

    def test_dtype_checked(self):
        @apply_contract
        def f(x: Float64["n"]):
            return x

        with pytest.raises(ContractViolation, match="float32"):
            f(np.ones(4, dtype=np.float32))

    def test_return_value_checked_against_bound_symbols(self):
        @apply_contract
        def f(x: Float64["n"]) -> Float64["n"]:
            return x[:-1]

        with pytest.raises(ContractViolation, match="return value"):
            f(np.ones(4))

    def test_int_dims_exact(self):
        @apply_contract
        def f(w: Float64[4, "m"]):
            return w

        f(np.ones((4, 7)))
        with pytest.raises(ContractViolation, match="axis 0"):
            f(np.ones((3, 7)))

    def test_rank_mismatch(self):
        @apply_contract
        def f(x: Float64["a", "b"]):
            return x

        with pytest.raises(ContractViolation, match="rank"):
            f(np.ones(4))

    def test_ellipsis_leading_dims_free(self):
        @apply_contract
        def f(x: Float64[..., "m"]) -> Float64[..., "m"]:
            return x

        f(np.ones((2, 3, 5)))
        f(np.ones(5))

    def test_optional_accepts_none(self):
        @apply_contract
        def f(x: Float64["n"], out: Float64["n"] | None = None):
            return x

        f(np.ones(3))
        f(np.ones(3), out=np.ones(3))
        with pytest.raises(ContractViolation):
            f(np.ones(3), out=np.ones(4))

    def test_float32_spec_accepts_float32(self):
        @apply_contract
        def f(x: Float32["n"]):
            return x

        f(np.ones(3, dtype=np.float32))
        with pytest.raises(ContractViolation):
            f(np.ones(3))

    def test_scalar_ok_for_dimless_spec(self):
        @apply_contract
        def f(x: Float64[...]):
            return x

        f(1.0)

    def test_sequence_spec_checks_each_item(self):
        from collections.abc import Sequence

        @apply_contract
        def f(fields: Sequence[Float64["nr", "lth", "lph"]]):
            return len(fields)

        assert f([np.ones((2, 3, 4)), np.ones((2, 3, 4))]) == 2
        with pytest.raises(ContractViolation, match=r"fields.*\[1\]"):
            f([np.ones((2, 3, 4)), np.ones((2, 3, 5))])

    def test_tuple_spec_checks_arity(self):
        @apply_contract
        def f(v: tuple[Float64["n"], Float64["n"], Float64["n"]]):
            return v

        f((np.ones(3), np.ones(3), np.ones(3)))
        with pytest.raises(ContractViolation, match="expected 3"):
            f((np.ones(3), np.ones(3)))

    def test_state_like_bundle_checked_per_field(self):
        from repro.mhd.state import MHDState

        @apply_contract
        def f(state: Float64["nr", "nth", "nph"]):
            return state

        f(MHDState.zeros((3, 4, 5)))

    def test_var_positional_not_spec_checked(self):
        @apply_contract
        def f(*arrays: Float64["n"]):
            return arrays

        # *args bundles are not bound to the spec (documented limit)
        f(np.ones(3), np.ones(4))


class TestStateStrictness:
    def test_shape_always_enforced(self):
        from repro.mhd.state import MHDState

        arrays = [np.zeros((2, 3, 4)) for _ in range(8)]
        arrays[5] = np.zeros((2, 3, 5))
        with pytest.raises(ValueError, match="shape"):
            MHDState(*arrays)

    def test_dtype_enforced_under_contracts(self):
        # the module-level gate is read at import; exercise it in a
        # child interpreter so the env is armed before repro imports
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.checkers.contracts import ContractViolation\n"
            "from repro.mhd.state import MHDState\n"
            "try:\n"
            "    MHDState(*[np.zeros((2, 3, 4), dtype=np.float32)"
            " for _ in range(8)])\n"
            "except ContractViolation:\n"
            "    print('VIOLATION')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_CONTRACTS": "1",
                 "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert "VIOLATION" in out.stdout, out.stderr

    def test_float64_state_accepted_without_contracts(self):
        from repro.mhd.state import MHDState

        MHDState.zeros((2, 3, 4))  # no raise


class TestAnnotatedBoundaries:
    """The shipped annotations are resolvable by the wrapper."""

    @pytest.mark.parametrize("modname, fname", [
        ("repro.fd.stencils", "diff"),
        ("repro.fd.stencils", "diff2"),
        ("repro.fd.stencils", "diff_raw"),
        ("repro.fd.stencils", "diff2_raw"),
    ])
    def test_stencils_check_under_wrapper(self, modname, fname):
        import importlib

        fn = getattr(importlib.import_module(modname), fname)
        wrapped = apply_contract(fn)
        args = (np.ones((4, 5, 6)), 0.1, 0) if fname in ("diff", "diff2") \
            else (np.ones((4, 5, 6)), 0)
        assert wrapped(*args).shape == (4, 5, 6)
        bad = (np.ones((4, 5, 6), dtype=np.float32),) + args[1:]
        with pytest.raises(ContractViolation):
            wrapped(*bad)

    def test_interpolator_contract_resolves(self):
        from repro.grids.yinyang import YinYangGrid

        grid = YinYangGrid(5, 10, 30)
        interp = grid.to_yang
        donor = np.ones((5, grid.yin.nth, grid.yin.nph))
        wrapped = apply_contract(type(interp).interp_scalar)
        out = wrapped(interp, donor)
        assert out.shape == (5, interp.n_ring)
        with pytest.raises(ContractViolation):
            wrapped(interp, donor.astype(np.float32))
