"""Bitwise-determinism layer: REP013-REP016 + the fingerprint harness.

Static side: the four determinism rules fire on minimal hazardous
fixtures and stay quiet on the blessed patterns (sorted iteration,
integer counters, seeded generators, per-iteration C accumulators,
``-ffp-contract=off``).  Dynamic side: state fingerprints are stable
across identical runs, localize an induced perturbation to the exact
(step, panel, field), ride along in checkpoints, and back the shared
``assert_bitwise_equal`` test assertion.  Finally the source tree
itself must be clean under every rule, per family and in the
single-pass driver.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.determinism import (
    DETERMINISM_RULES,
    determinism_lint_paths,
    determinism_lint_source,
)
from repro.checkers.driver import ALL_RULES, lint_all_paths
from repro.checkers.fingerprint import (
    Fingerprint,
    assert_bitwise_equal,
    field_digest,
    fingerprint_state,
    first_divergence,
    state_digests,
    states_root_digest,
)
from repro.grids.component import Panel
from repro.mhd.state import FIELD_NAMES, MHDState


def rules_of(violations):
    return [v.rule for v in violations]


class TestRegistry:
    def test_rule_ids(self):
        assert set(DETERMINISM_RULES) == {
            "REP013", "REP014", "REP015", "REP016",
        }

    def test_all_rules_spans_every_family(self):
        assert set(ALL_RULES) == {f"REP{i:03d}" for i in range(1, 17)}


# ---------------------------------------------------------------------------
# REP013: nondeterministic iteration order feeding numerics or comm
# ---------------------------------------------------------------------------


class TestRep013:
    SET_SEND = (
        "def schedule(comm, payload, ranks):\n"
        "    targets = set(ranks)\n"
        "    for r in targets:\n"
        "        comm.Send(payload, dest=r, tag=7)\n"
    )

    SET_APPEND = (
        "def plan(items):\n"
        "    pending = set(items)\n"
        "    out = []\n"
        "    for x in pending:\n"
        "        out.append(x)\n"
        "    return out\n"
    )

    SET_FP_ACCUM = (
        "def total_energy(weights):\n"
        "    ws = set(weights)\n"
        "    total = 0.0\n"
        "    for w in ws:\n"
        "        total += w\n"
        "    return total\n"
    )

    DICT_FROM_SET = (
        "def sizes(items):\n"
        "    lookup = {k: len(k) for k in set(items)}\n"
        "    total = 0.0\n"
        "    for k, v in lookup.items():\n"
        "        total += v\n"
        "    return total\n"
    )

    SORTED_OK = (
        "def plan(items):\n"
        "    out = []\n"
        "    for x in sorted(set(items)):\n"
        "        out.append(x)\n"
        "    return out\n"
    )

    COUNTER_OK = (
        "def count(items):\n"
        "    n = 0\n"
        "    for x in set(items):\n"
        "        n += 1\n"
        "    return n\n"
    )

    def test_set_iteration_sending_messages(self):
        assert "REP013" in rules_of(determinism_lint_source(self.SET_SEND))

    def test_set_iteration_building_a_schedule(self):
        assert "REP013" in rules_of(determinism_lint_source(self.SET_APPEND))

    def test_set_iteration_accumulating_floats(self):
        assert "REP013" in rules_of(determinism_lint_source(self.SET_FP_ACCUM))

    def test_unordered_dict_items_iteration(self):
        assert "REP013" in rules_of(determinism_lint_source(self.DICT_FROM_SET))

    def test_sorted_wrapper_is_blessed(self):
        assert determinism_lint_source(self.SORTED_OK) == []

    def test_integer_counter_is_not_an_fp_accumulation(self):
        assert determinism_lint_source(self.COUNTER_OK) == []

    def test_noqa_on_the_loop_line(self):
        src = self.SET_APPEND.replace(
            "    for x in pending:",
            "    for x in pending:  # repro: noqa-REP013",
        )
        assert determinism_lint_source(src) == []


# ---------------------------------------------------------------------------
# REP014: unordered floating-point reductions
# ---------------------------------------------------------------------------


class TestRep014:
    HOT_SUM = (
        "import numpy as np\n"
        "from repro.checkers.hotpath import hot_path\n"
        "@hot_path\n"
        "def kinetic(f):\n"
        "    return np.sum(f * f)\n"
    )

    COLD_SUM = (
        "import numpy as np\n"
        "def diagnostics(f):\n"
        "    return np.sum(f * f)\n"
    )

    GATHERED_SUM = (
        "import repro.parallel\n"
        "def reduce_energy(comm, local):\n"
        "    parts = comm.allgather(local)\n"
        "    return sum(parts)\n"
    )

    BLESSED_LEFT_FOLD = (
        "import repro.parallel\n"
        "def reduce_energy(comm, local):\n"
        "    parts = comm.allgather(local)\n"
        "    total = parts[0]\n"
        "    for p in parts[1:]:\n"
        "        total = total + p\n"
        "    return total\n"
    )

    def test_reduction_in_hot_function(self):
        violations = determinism_lint_source(self.HOT_SUM)
        assert rules_of(violations) == ["REP014"]

    def test_reduction_in_cold_function_is_fine(self):
        assert determinism_lint_source(self.COLD_SUM) == []

    def test_builtin_sum_over_gathered_per_rank_data(self):
        assert "REP014" in rules_of(determinism_lint_source(self.GATHERED_SUM))

    def test_rank_order_left_fold_is_blessed(self):
        assert determinism_lint_source(self.BLESSED_LEFT_FOLD) == []


# ---------------------------------------------------------------------------
# REP015: ambient nondeterminism reachable from hot kernels
# ---------------------------------------------------------------------------


class TestRep015:
    DIRECT = (
        "import time\n"
        "import random\n"
        "import numpy as np\n"
        "from repro.checkers.hotpath import hot_path\n"
        "@hot_path\n"
        "def kernel(f):\n"
        "    t0 = time.perf_counter()\n"
        "    jitter = random.random()\n"
        "    rng = np.random.default_rng()\n"
        "    return f * jitter + t0 + rng.standard_normal()\n"
    )

    SEEDED_OK = (
        "import numpy as np\n"
        "from repro.checkers.hotpath import hot_path\n"
        "@hot_path\n"
        "def kernel(f):\n"
        "    rng = np.random.default_rng(1234)\n"
        "    return f + rng.standard_normal()\n"
    )

    HASH_KEYED = (
        "from repro.checkers.hotpath import hot_path\n"
        "@hot_path\n"
        "def lookup(cache, buf):\n"
        "    return cache[id(buf)]\n"
    )

    def test_direct_ambient_calls_in_hot_function(self):
        violations = determinism_lint_source(self.DIRECT)
        assert rules_of(violations) == ["REP015", "REP015", "REP015"]

    def test_seeded_generator_is_blessed(self):
        assert determinism_lint_source(self.SEEDED_OK) == []

    def test_identity_keyed_lookup_in_hot_function(self):
        assert "REP015" in rules_of(determinism_lint_source(self.HASH_KEYED))

    def test_cross_file_reachability_names_the_hot_root(self, tmp_path):
        (tmp_path / "kernel_mod.py").write_text(
            "from helpers_det import jitter\n"
            "from repro.checkers.hotpath import hot_path\n"
            "@hot_path\n"
            "def stencil_kernel(x):\n"
            "    return jitter(x)\n"
        )
        (tmp_path / "helpers_det.py").write_text(
            "import random\n"
            "def jitter(x):\n"
            "    return x * (1.0 + random.random())\n"
        )
        violations, n_files = determinism_lint_paths([str(tmp_path)])
        assert n_files == 2
        hits = [v for v in violations if v.rule == "REP015"]
        assert hits, "cross-file ambient hazard not found"
        assert any("stencil_kernel" in v.message for v in hits)
        assert any(v.path.endswith("helpers_det.py") for v in hits)

    def test_cold_helper_not_reachable_from_hot_is_fine(self, tmp_path):
        (tmp_path / "helpers_cold.py").write_text(
            "import random\n"
            "def shuffle_seed(x):\n"
            "    return x * (1.0 + random.random())\n"
        )
        violations, _ = determinism_lint_paths([str(tmp_path)])
        assert violations == []


# ---------------------------------------------------------------------------
# REP016: FP-contraction / fast-math hazards in the C backend
# ---------------------------------------------------------------------------


class TestRep016:
    FAST_MATH = 'COMPILE_ARGS = ["-O3", "-ffast-math"]\n'
    NO_CONTRACT_OFF = 'COMPILE_ARGS = ["-O2"]\n'
    BLESSED_FLAGS = 'COMPILE_ARGS = ["-O3", "-ffp-contract=off"]\n'

    CSRC_FMA = (
        'CSRC = """\n'
        "#include <math.h>\n"
        "double dot(const double *a, const double *b, int n) {\n"
        "    double s = 0.0;\n"
        "    for (int i = 0; i < n; i++) {\n"
        "        s = fma(a[i], b[i], s);\n"
        "    }\n"
        "    return s;\n"
        '}\n"""\n'
    )

    CSRC_SPLIT_ACCUM = (
        'CSRC = """\n'
        "#include <stddef.h>\n"
        "double total(const double *a, int n) {\n"
        "    double s0 = 0.0;\n"
        "    double s1 = 0.0;\n"
        "    for (int i = 0; i + 1 < n; i += 2) {\n"
        "        s0 += a[i];\n"
        "        s1 += a[i + 1];\n"
        "    }\n"
        "    return s0 + s1;\n"
        '}\n"""\n'
    )

    CSRC_LOCAL_ACCUM = (
        'CSRC = """\n'
        "#include <stddef.h>\n"
        "void scale(const double *a, double *out, int n) {\n"
        "    for (int i = 0; i < n; i++) {\n"
        "        double t0 = 0.0;\n"
        "        t0 += a[i] * 2.0;\n"
        "        out[i] = t0;\n"
        "    }\n"
        '}\n"""\n'
    )

    def test_fast_math_flag(self):
        assert "REP016" in rules_of(determinism_lint_source(self.FAST_MATH))

    def test_missing_fp_contract_off(self):
        assert "REP016" in rules_of(
            determinism_lint_source(self.NO_CONTRACT_OFF)
        )

    def test_blessed_flags(self):
        assert determinism_lint_source(self.BLESSED_FLAGS) == []

    def test_explicit_fma_in_c_source(self):
        violations = determinism_lint_source(self.CSRC_FMA)
        assert "REP016" in rules_of(violations)
        # line number points into the embedded C, not at the assignment
        hit = next(v for v in violations if v.rule == "REP016")
        assert hit.line > 1

    def test_split_accumulators_recombined(self):
        assert "REP016" in rules_of(
            determinism_lint_source(self.CSRC_SPLIT_ACCUM)
        )

    def test_per_iteration_accumulator_is_blessed(self):
        assert determinism_lint_source(self.CSRC_LOCAL_ACCUM) == []


# ---------------------------------------------------------------------------
# Property-based: hazard placement and blessed constructs
# ---------------------------------------------------------------------------


SAFE_BLOCKS = (
    "    for x in sorted(set(items)):\n        out.append(x)\n",
    "    for x in list(items):\n        out.append(x)\n",
    "    for x in items_list:\n        out.append(x)\n",
    "    acc = 0.0\n    for x in sorted(set(items)):\n        acc += x\n",
)

HAZARD_BLOCK = "    for x in set(items):\n        out.append(x)\n"


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.sampled_from(SAFE_BLOCKS), min_size=0, max_size=4),
        st.integers(min_value=0, max_value=4),
    )
    def test_single_hazard_always_found(self, safe, pos):
        pos = min(pos, len(safe))
        blocks = list(safe[:pos]) + [HAZARD_BLOCK] + list(safe[pos:])
        src = ("def plan(items, items_list):\n    out = []\n"
               + "".join(blocks) + "    return out\n")
        violations = determinism_lint_source(src)
        assert rules_of(violations) == ["REP013"]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(SAFE_BLOCKS), min_size=1, max_size=6))
    def test_blessed_programs_stay_clean(self, safe):
        src = ("def plan(items, items_list):\n    out = []\n"
               + "".join(safe) + "    return out\n")
        assert determinism_lint_source(src) == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_seeded_rng_never_flagged(self, seed):
        src = (
            "import numpy as np\n"
            "from repro.checkers.hotpath import hot_path\n"
            "@hot_path\n"
            "def kernel(f):\n"
            f"    rng = np.random.default_rng({seed})\n"
            "    return f + rng.standard_normal()\n"
        )
        assert determinism_lint_source(src) == []


# ---------------------------------------------------------------------------
# Fingerprints: digests, localization, checkpoint embedding
# ---------------------------------------------------------------------------


def make_state(fill: float = 0.0, shape=(2, 3, 4)) -> MHDState:
    return MHDState(*[np.full(shape, fill + i) for i in range(len(FIELD_NAMES))])


def make_pair(fill: float = 0.0):
    return {Panel.YIN: make_state(fill), Panel.YANG: make_state(fill + 0.5)}


class TestFieldDigest:
    def test_copy_shares_digest(self):
        a = np.arange(24.0).reshape(2, 3, 4)
        assert field_digest(a) == field_digest(a.copy())

    def test_shape_is_part_of_the_digest(self):
        a = np.arange(8.0).reshape(2, 4)
        assert field_digest(a) != field_digest(a.reshape(4, 2))

    def test_dtype_is_part_of_the_digest(self):
        a = np.arange(8.0)
        assert field_digest(a) != field_digest(a.astype(np.float32))

    def test_signed_zero_differs(self):
        a = np.zeros(4)
        b = np.zeros(4)
        b[0] = -0.0
        assert field_digest(a) != field_digest(b)

    def test_identical_nan_payloads_match(self):
        a = np.array([np.nan, 1.0])
        assert field_digest(a) == field_digest(a.copy())

    def test_noncontiguous_view_hashes_like_its_copy(self):
        a = np.arange(24.0).reshape(4, 6)
        view = a[:, ::2]
        assert field_digest(view) == field_digest(view.copy())


class TestFingerprint:
    def test_single_state_uses_single_layout(self):
        fp = fingerprint_state(make_state())
        assert set(fp.fields) == {"single"}
        assert set(fp.fields["single"]) == set(FIELD_NAMES)

    def test_panel_pair(self):
        fp = fingerprint_state(make_pair(), step=3, time=0.25)
        assert set(fp.fields) == {"yin", "yang"}
        assert fp.step == 3 and fp.time == 0.25

    def test_root_reacts_to_any_field(self):
        pair = make_pair()
        base = fingerprint_state(pair).root
        pair[Panel.YANG].p[0, 0, 0] += 1.0
        assert fingerprint_state(pair).root != base

    def test_states_root_digest_matches_fingerprint(self):
        pair = make_pair()
        assert states_root_digest(pair) == fingerprint_state(pair).root


class TestFirstDivergence:
    def timelines(self, perturb_step):
        ref, got = [], []
        for k in range(4):
            pair = make_pair(float(k))
            ref.append(fingerprint_state(pair, step=k))
            if k >= perturb_step:
                pair = {p: MHDState(*[a.copy() for _, a in s.named_arrays()])
                        for p, s in pair.items()}
                pair[Panel.YANG].p[0, 0, 0] *= -1.0  # 0.5+k -> sign flip
            got.append(fingerprint_state(pair, step=k))
        return ref, got

    def test_identical_timelines(self):
        ref, _ = self.timelines(99)
        assert first_divergence(ref, list(ref)) is None

    def test_localizes_step_panel_field(self):
        ref, got = self.timelines(2)
        div = first_divergence(ref, got)
        assert (div.step, div.panel, div.field) == (2, "yang", "p")
        assert "step 2" in div.describe() and "'p'" in div.describe()

    def test_restart_leg_matches_on_common_steps_only(self):
        ref, _ = self.timelines(99)
        assert first_divergence(ref, ref[2:]) is None

    def test_layout_mismatch_reported(self):
        a = [fingerprint_state(make_pair(), step=0)]
        b = [fingerprint_state(make_state(), step=0)]
        assert first_divergence(a, b).field == "<layout>"


class TestAssertBitwiseEqual:
    def test_passes_on_equal_states(self):
        assert_bitwise_equal(make_pair(), make_pair())

    def test_names_the_divergent_field(self):
        a, b = make_pair(), make_pair()
        fr = b[Panel.YIN].fr
        fr[1, 1, 1] = np.nextafter(fr[1, 1, 1], np.inf)
        with pytest.raises(AssertionError, match=r"'yin'.*'fr'"):
            assert_bitwise_equal(a, b, step=7, context="unit")


class TestCheckpointFingerprint:
    def test_save_embeds_root_digest(self, tmp_path):
        from repro.core.checkpoint import read_meta, save_checkpoint

        pair = make_pair()
        path = save_checkpoint(tmp_path / "cp.npz", pair, time=0.5, step=3)
        assert read_meta(path)["fingerprint"] == states_root_digest(pair)

    def test_verify_checkpoint_round_trip(self, tmp_path):
        from repro.core.checkpoint import save_checkpoint, verify_checkpoint

        state = make_state()
        path = save_checkpoint(tmp_path / "cp.npz", state, time=0.5, step=3)
        assert verify_checkpoint(path) == states_root_digest(state)

    def test_verify_checkpoint_catches_tampering(self, tmp_path):
        from repro.core.checkpoint import save_checkpoint, verify_checkpoint

        path = save_checkpoint(tmp_path / "cp.npz", make_state(), step=1)
        data = dict(np.load(path))
        data["single:p"] = data["single:p"] + 1.0
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            verify_checkpoint(path)


class TestFingerprintObserver:
    @pytest.fixture(scope="class")
    def config(self):
        from repro.core import RunConfig
        from repro.mhd.parameters import MHDParameters

        return RunConfig(nr=5, nth=10, nph=30,
                         params=MHDParameters.laptop_demo(), dt=1e-3,
                         amp_temperature=1e-2)

    def run_serial(self, config, steps, extra=()):
        from repro.core import YinYangDynamo
        from repro.engine import FingerprintObserver

        driver = YinYangDynamo(config)
        observer = FingerprintObserver()
        driver.run(steps, observers=(*extra, observer))
        return observer.fingerprints

    def test_run_to_run_stability(self, config):
        a = self.run_serial(config, 2)
        b = self.run_serial(config, 2)
        assert len(a) == 3  # pre-step capture + one per step
        assert first_divergence(a, b) is None

    def test_induced_perturbation_is_localized(self, config):
        from repro.engine import StepObserver

        class Perturb(StepObserver):
            def after_step(self, event):
                if event.step == 2:
                    p = event.driver.state[Panel.YANG].p
                    p[0, 0, 0] = np.nextafter(p[0, 0, 0], np.inf)

        ref = self.run_serial(config, 3)
        got = self.run_serial(config, 3, extra=(Perturb(),))
        div = first_divergence(ref, got)
        assert (div.step, div.panel, div.field) == (2, "yang", "p")

    def test_requires_a_state_attribute(self):
        from repro.engine import FingerprintObserver

        with pytest.raises(TypeError, match="state"):
            FingerprintObserver().on_start(object())


# ---------------------------------------------------------------------------
# The source tree self-check and the single-pass driver
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_source_tree_is_determinism_clean(self):
        violations, n_files = determinism_lint_paths(["src"])
        assert violations == []
        assert n_files > 50

    def test_source_tree_is_clean_in_single_pass(self):
        violations, n_files = lint_all_paths(["src"])
        assert violations == []
        assert n_files > 50

    def test_single_pass_agrees_with_per_family_drivers(self, tmp_path):
        (tmp_path / "dirty.py").write_text(
            TestRep013.SET_APPEND + TestRep016.FAST_MATH
        )
        single, _ = lint_all_paths([str(tmp_path)])
        family, _ = determinism_lint_paths([str(tmp_path)])
        assert set(rules_of(single)) >= set(rules_of(family))
        assert {"REP013", "REP016"} <= set(rules_of(single))

    def test_rule_subset_routing(self, tmp_path):
        (tmp_path / "dirty.py").write_text(
            TestRep013.SET_APPEND + TestRep016.FAST_MATH
        )
        only_16, _ = lint_all_paths([str(tmp_path)], rules=["REP016"])
        assert set(rules_of(only_16)) == {"REP016"}


class TestCli:
    def test_lint_runs_all_families_by_default(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep013.SET_APPEND)
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(f)])
        assert exc.value.code == 1
        assert "REP013" in capsys.readouterr().out

    def test_lint_determinism_rule_subset(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text(TestRep016.FAST_MATH)
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--rules", "REP016", "--format", "json", str(f)])
        assert exc.value.code == 1

    def test_verify_bitwise_thread_case(self, capsys):
        from repro.cli import main

        assert main(["verify-bitwise", "--cases", "thread",
                     "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "thread" in out and "OK" in out
