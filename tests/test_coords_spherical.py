import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coords.spherical import (
    cart_to_sph,
    cart_vector_to_sph,
    great_circle_distance,
    sph_to_cart,
    sph_vector_to_cart,
    unit_vectors,
)

angles = st.tuples(
    st.floats(0.05, np.pi - 0.05),  # theta away from the axis
    st.floats(-np.pi + 0.01, np.pi - 0.01),
)
radii = st.floats(0.1, 10.0)


class TestPositionRoundTrip:
    @given(radii, angles)
    def test_sph_cart_sph(self, r, ang):
        th, ph = ang
        x, y, z = sph_to_cart(r, th, ph)
        r2, th2, ph2 = cart_to_sph(x, y, z)
        assert r2 == pytest.approx(r, rel=1e-12)
        assert th2 == pytest.approx(th, abs=1e-12)
        assert ph2 == pytest.approx(ph, abs=1e-12)

    def test_axis_points(self):
        x, y, z = sph_to_cart(2.0, 0.0, 0.3)
        assert (x, y) == pytest.approx((0.0, 0.0), abs=1e-15)
        assert z == pytest.approx(2.0)
        r, th, _ = cart_to_sph(0.0, 0.0, -1.0)
        assert th == pytest.approx(np.pi)
        assert r == pytest.approx(1.0)

    def test_origin_is_finite(self):
        r, th, ph = cart_to_sph(0.0, 0.0, 0.0)
        assert r == 0.0
        assert np.isfinite(th) and np.isfinite(ph)

    def test_vectorised_shapes(self):
        th = np.linspace(0.3, 2.0, 5)[:, None]
        ph = np.linspace(-1, 1, 7)[None, :]
        x, y, z = sph_to_cart(1.0, th, ph)
        assert x.shape == (5, 7)


class TestUnitVectors:
    @given(angles)
    def test_orthonormal(self, ang):
        th, ph = ang
        rhat, thhat, phhat = unit_vectors(th, ph)
        basis = np.stack([rhat, thhat, phhat])
        gram = basis @ basis.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-12)

    @given(angles)
    def test_right_handed(self, ang):
        th, ph = ang
        rhat, thhat, phhat = unit_vectors(th, ph)
        np.testing.assert_allclose(np.cross(rhat, thhat), phhat, atol=1e-12)

    @given(angles)
    def test_rhat_points_outward(self, ang):
        th, ph = ang
        x, y, z = sph_to_cart(1.0, th, ph)
        rhat, _, _ = unit_vectors(th, ph)
        np.testing.assert_allclose(rhat, [x, y, z], atol=1e-12)


class TestVectorTransforms:
    @given(angles, st.tuples(*[st.floats(-5, 5)] * 3))
    def test_round_trip(self, ang, comps):
        th, ph = ang
        vr, vth, vph = comps
        vx, vy, vz = sph_vector_to_cart(vr, vth, vph, th, ph)
        back = cart_vector_to_sph(vx, vy, vz, th, ph)
        np.testing.assert_allclose(back, comps, atol=1e-12)

    @given(angles, st.tuples(*[st.floats(-5, 5)] * 3))
    def test_norm_preserved(self, ang, comps):
        th, ph = ang
        vx, vy, vz = sph_vector_to_cart(*comps, *ang)
        assert vx**2 + vy**2 + vz**2 == pytest.approx(
            sum(c**2 for c in comps), rel=1e-10, abs=1e-12
        )

    def test_radial_vector_is_position_direction(self):
        th, ph = 1.1, 0.7
        vx, vy, vz = sph_vector_to_cart(3.0, 0.0, 0.0, th, ph)
        x, y, z = sph_to_cart(3.0, th, ph)
        np.testing.assert_allclose([vx, vy, vz], [x, y, z], atol=1e-12)


class TestGreatCircle:
    def test_antipodes(self):
        d = great_circle_distance(np.pi / 2, 0.0, np.pi / 2, np.pi)
        assert d == pytest.approx(np.pi)

    def test_same_point(self):
        assert great_circle_distance(1.0, 0.5, 1.0, 0.5) == pytest.approx(0.0, abs=1e-12)

    @given(angles, angles)
    def test_symmetric_and_bounded(self, a, b):
        d1 = great_circle_distance(a[0], a[1], b[0], b[1])
        d2 = great_circle_distance(b[0], b[1], a[0], a[1])
        assert d1 == pytest.approx(d2, abs=1e-12)
        assert 0.0 <= d1 <= np.pi + 1e-12
