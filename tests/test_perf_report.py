import pytest

from repro.perf.report import Comparison, generate_report


class TestComparison:
    def test_rel_error(self):
        c = Comparison("T", "q", paper=10.0, reproduced=10.5, tolerance=0.1)
        assert c.rel_error == pytest.approx(0.05)
        assert c.matches

    def test_mismatch(self):
        c = Comparison("T", "q", paper=10.0, reproduced=15.0, tolerance=0.1)
        assert not c.matches

    def test_zero_paper_value(self):
        c = Comparison("T", "q", paper=0.0, reproduced=0.0, tolerance=0.1)
        assert c.matches


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_every_quantity_matches(self, report):
        """The headline assertion of the reproduction: every recorded
        paper quantity is regenerated within its tolerance."""
        failing = [c for c in report.items if not c.matches]
        assert failing == [], [
            (c.artefact, c.quantity, c.paper, c.reproduced) for c in failing
        ]

    def test_covers_all_artefacts(self, report):
        artefacts = {c.artefact for c in report.items}
        assert artefacts == {"Table I", "Table II", "Table III", "Fig. 1",
                             "List 1", "Section V"}

    def test_at_least_twenty_quantities(self, report):
        assert len(report.items) >= 20

    def test_markdown_rendering(self, report):
        md = report.to_markdown()
        assert md.startswith("| artefact |")
        assert "within tolerance" in md
        assert "NO" not in md.replace("| NO |", "")  # no failing rows

    def test_rollup(self, report):
        assert report.all_match
        assert report.n_matching == len(report.items)
