import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid
from repro.mhd.diagnostics import (
    EnergyReport,
    dipole_moment_axis,
    panel_energies,
    saturation_detector,
    yinyang_energies,
    yinyang_quadrature_weights,
)
from repro.mhd.initial import conduction_state
from repro.mhd.parameters import MHDParameters


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(9, 16, 46)


class TestEnergyReport:
    def test_addition(self):
        a = EnergyReport(1, 2, 3, 4)
        b = EnergyReport(10, 20, 30, 40)
        c = a + b
        assert (c.kinetic, c.magnetic, c.thermal, c.mass) == (11, 22, 33, 44)

    def test_as_dict_keys(self):
        d = EnergyReport(1, 2, 3, 4).as_dict()
        assert set(d) == {"kinetic", "magnetic", "thermal", "mass"}


class TestPanelEnergies:
    def test_rest_state_kinetic_zero(self, grid, params):
        s = conduction_state(grid.yin, params)
        rep = panel_energies(grid.yin, s, params)
        assert rep.kinetic == 0.0
        assert rep.magnetic == pytest.approx(0.0, abs=1e-20)
        assert rep.thermal > 0.0
        assert rep.mass > 0.0

    def test_kinetic_quadratic_in_flow(self, grid, params):
        s = conduction_state(grid.yin, params)
        s.fr[:] = 0.1 * s.rho
        e1 = panel_energies(grid.yin, s, params).kinetic
        s.fr[:] = 0.2 * s.rho
        e2 = panel_energies(grid.yin, s, params).kinetic
        assert e2 == pytest.approx(4.0 * e1, rel=1e-10)

    def test_uniform_flow_kinetic_value(self, grid, params):
        """KE of |v| = v0 everywhere = v0^2/2 x total mass."""
        s = conduction_state(grid.yin, params)
        v0 = 0.05
        s.fth[:] = v0 * s.rho
        rep = panel_energies(grid.yin, s, params)
        assert rep.kinetic == pytest.approx(0.5 * v0**2 * rep.mass, rel=1e-10)


class TestOverlapCorrection:
    def test_weights_halved_in_overlap(self, grid):
        w = yinyang_quadrature_weights(grid)
        for panel in (Panel.YIN, Panel.YANG):
            g = grid.panel(panel)
            mask = grid.overlap_mask[panel]
            full = g.volume_weights()
            ratio = w[panel] / full
            assert np.all(ratio[:, mask] == 0.5)
            assert np.all(ratio[:, ~mask] == 1.0)

    def test_total_mass_close_to_analytic(self, grid, params):
        """Overlap-corrected mass integral matches the exact shell mass
        of the hydrostatic profile."""
        from scipy.integrate import quad

        from repro.mhd.initial import hydrostatic_profiles

        states = {
            p: conduction_state(grid.panel(p), params)
            for p in (Panel.YIN, Panel.YANG)
        }
        rep = yinyang_energies(grid, states, params)

        def integrand(r):
            return hydrostatic_profiles(np.array([r]), params)[2][0] * 4 * np.pi * r**2

        exact, _ = quad(integrand, params.ri, params.ro)
        assert rep.mass == pytest.approx(exact, rel=0.02)

    def test_double_counting_without_correction(self, grid, params):
        """Naive per-panel sums overcount by the overlap mass."""
        states = {
            p: conduction_state(grid.panel(p), params)
            for p in (Panel.YIN, Panel.YANG)
        }
        naive = sum(
            panel_energies(grid.panel(p), s, params).mass for p, s in states.items()
        )
        corrected = yinyang_energies(grid, states, params).mass
        assert naive > corrected * 1.05


class TestDipoleMoment:
    def test_zero_without_field(self, grid, params):
        s = conduction_state(grid.yin, params)
        assert dipole_moment_axis(grid.yin, s, params) == 0.0

    def test_sign_follows_field(self, grid, params):
        """A ~ uniform-Bz vector potential: A_phi = B0 r sin(theta)/2."""
        s = conduction_state(grid.yin, params)
        b0 = 0.2
        s.aph[:] = 0.5 * b0 * grid.yin.r3 * np.sin(grid.yin.theta3)
        m_plus = dipole_moment_axis(grid.yin, s, params)
        s.aph *= -1.0
        m_minus = dipole_moment_axis(grid.yin, s, params)
        assert m_plus > 0.0
        assert m_minus == pytest.approx(-m_plus, rel=1e-10)


class TestSaturationDetector:
    def test_flat_series_saturated(self):
        t = np.arange(30.0)
        e = np.ones(30)
        assert saturation_detector((t, e))

    def test_growing_series_not_saturated(self):
        t = np.arange(30.0)
        e = np.exp(t / 3.0)
        assert not saturation_detector((t, e))

    def test_needs_enough_samples(self):
        t = np.arange(3.0)
        assert not saturation_detector((t, np.ones(3)), window=10)

    def test_zero_energy_series(self):
        t = np.arange(20.0)
        assert saturation_detector((t, np.zeros(20)))
