import numpy as np
import pytest

from repro.analysis.harmonics import (
    dipole_tilt,
    gauss_coefficients,
    real_sph_harm,
    surface_expand,
    surface_quadrature,
)
from repro.coords.transforms import other_panel_angles
from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid
from repro.mhd.state import MHDState


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(7, 26, 76)


def sample_harmonic(grid, l, m):
    fields = {}
    for p in (Panel.YIN, Panel.YANG):
        g = grid.panel(p)
        th, ph = np.meshgrid(g.theta, g.phi, indexing="ij")
        if p is Panel.YANG:
            th, ph = other_panel_angles(th, ph)
        fields[p] = real_sph_harm(l, m, th, ph)
    return fields


class TestRealSphHarm:
    def test_y00_constant(self):
        y = real_sph_harm(0, 0, 0.7, 1.1)
        assert y == pytest.approx(1.0 / np.sqrt(4 * np.pi))

    def test_y10_form(self):
        th = np.linspace(0.1, 3.0, 9)
        y = real_sph_harm(1, 0, th, 0.0)
        np.testing.assert_allclose(y, np.sqrt(3 / (4 * np.pi)) * np.cos(th), atol=1e-12)

    def test_sine_and_cosine_harmonics(self):
        th, ph = 1.0, 0.6
        yc = real_sph_harm(2, 1, th, ph)
        ys = real_sph_harm(2, -1, th, ph)
        ratio = ys / yc
        assert ratio == pytest.approx(np.tan(ph), rel=1e-10)

    def test_analytic_orthonormality(self):
        """High-resolution quadrature on a plain lat-lon raster."""
        nth, nph = 200, 400
        th = (np.arange(nth) + 0.5) * np.pi / nth
        ph = -np.pi + (np.arange(nph) + 0.5) * 2 * np.pi / nph
        TH, PH = np.meshgrid(th, ph, indexing="ij")
        w = np.sin(TH) * (np.pi / nth) * (2 * np.pi / nph)
        for (l1, m1), (l2, m2) in [((1, 0), (1, 0)), ((2, 1), (2, 1)),
                                   ((1, 0), (2, 0)), ((2, 1), (2, -1))]:
            a = real_sph_harm(l1, m1, TH, PH)
            b = real_sph_harm(l2, m2, TH, PH)
            inner = float(np.sum(a * b * w))
            expected = 1.0 if (l1, m1) == (l2, m2) else 0.0
            assert inner == pytest.approx(expected, abs=2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            real_sph_harm(1, 2, 0.5, 0.5)
        with pytest.raises(ValueError):
            real_sph_harm(-1, 0, 0.5, 0.5)


class TestSurfaceQuadrature:
    def test_total_solid_angle(self, grid):
        w = surface_quadrature(grid)
        total = sum(float(x.sum()) for x in w.values())
        assert total == pytest.approx(4 * np.pi, rel=5e-3)


class TestSurfaceExpand:
    @pytest.mark.parametrize("lm", [(1, 0), (2, 1), (3, -2)])
    def test_recovers_pure_harmonics(self, grid, lm):
        l, m = lm
        fields = sample_harmonic(grid, l, m)
        c = surface_expand(grid, fields, lmax=3)
        assert c[(l, m)] == pytest.approx(1.0, abs=0.02)
        others = [abs(v) for k, v in c.items() if k != (l, m)]
        assert max(others) < 0.03

    def test_constant_field_is_y00(self, grid):
        fields = {p: np.ones(grid.panel(p).shape[1:]) for p in (Panel.YIN, Panel.YANG)}
        c = surface_expand(grid, fields, lmax=1)
        assert c[(0, 0)] == pytest.approx(np.sqrt(4 * np.pi), rel=5e-3)


class TestGaussCoefficients:
    def test_axial_dipole_potential_field(self, grid):
        """A uniform internal field B = B0 zhat has A_phi = B0 r sin/2,
        B_r = B0 cos(theta): a pure (l=1, m=0) harmonic whose Gauss
        coefficient is B0 sqrt(4 pi / 3) / 2... we verify proportionality
        and sign symmetry rather than the absolute constant."""
        b0 = 0.4
        states = {}
        for p in (Panel.YIN, Panel.YANG):
            g = grid.panel(p)
            s = MHDState.zeros(g.shape)
            s.rho[:] = 1.0
            s.p[:] = 1.0
            if p is Panel.YIN:
                s.aph[:] = 0.5 * b0 * g.r3 * np.sin(g.theta3)
            else:
                # global zhat field in Yang components via the vector map
                from repro.coords.spherical import cart_vector_to_sph, sph_to_cart
                from repro.coords.transforms import yinyang_vector_map

                th, ph = np.meshgrid(g.theta, g.phi, indexing="ij")
                th_g, ph_g = other_panel_angles(th, ph)
                x, y, z = sph_to_cart(1.0, th_g, ph_g)
                # A = B0/2 zhat x r (global)
                ax, ay, az = -0.5 * b0 * y, 0.5 * b0 * x, np.zeros_like(x)
                ax, ay, az = yinyang_vector_map(ax, ay, az)
                ar_, ath_, aph_ = cart_vector_to_sph(ax, ay, az, th, ph)
                s.ar[:] = g.r3 * ar_[None]
                s.ath[:] = g.r3 * ath_[None]
                s.aph[:] = g.r3 * aph_[None]
            states[p] = s
        g1 = gauss_coefficients(grid, states, lmax=2)
        g10 = g1[(1, 0)]
        assert g10 > 0.0
        # the remaining coefficients are noise-level
        others = [abs(v) for k, v in g1.items() if k != (1, 0)]
        assert max(others) < 0.05 * g10
        # flipping the field flips the coefficient
        for s in states.values():
            for c in s.a:
                c *= -1.0
        g2 = gauss_coefficients(grid, states, lmax=2)
        assert g2[(1, 0)] == pytest.approx(-g10, rel=1e-10)

    def test_dipole_tilt_limits(self):
        assert dipole_tilt({(1, 0): 1.0, (1, 1): 0.0, (1, -1): 0.0}) == 0.0
        assert dipole_tilt({(1, 0): 0.0, (1, 1): 1.0, (1, -1): 0.0}) == pytest.approx(
            np.pi / 2
        )
        assert dipole_tilt({(1, 0): -1.0, (1, 1): 0.0, (1, -1): 0.0}) == pytest.approx(
            np.pi
        )
