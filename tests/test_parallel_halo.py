import numpy as np
import pytest

from repro.parallel.cart import create_cart
from repro.parallel.decomposition import HALO, PanelDecomposition
from repro.parallel.halo import HaloExchanger
from repro.parallel.simmpi import SimMPI


def exchange_world(nth, nph, pth, pph, nr=3, nfields=1, seed=0, packed=True):
    """Run a halo exchange of a deterministic global field and return
    each rank's local array after the exchange."""
    decomp = PanelDecomposition(nth, nph, pth, pph)
    rng = np.random.default_rng(seed)
    global_fields = [rng.normal(size=(nr, nth, nph)) for _ in range(nfields)]

    def prog(comm):
        cart = create_cart(comm, (pth, pph))
        sub = decomp.subdomain(comm.rank)
        ex = HaloExchanger(cart, sub, packed=packed)
        locs = []
        for g in global_fields:
            sl = sub.local_extent_global()
            loc = np.ascontiguousarray(g[:, sl[0], sl[1]])
            # poison every halo cell; the exchange must repair them all
            oth, oph = sub.owned_local()
            mask = np.ones(loc.shape[1:], dtype=bool)
            mask[oth, oph] = False
            loc[:, mask] = np.nan
            locs.append(loc)
        ex.exchange(locs)
        return locs

    results = SimMPI.run(pth * pph, prog)
    return decomp, global_fields, results


class TestExchangeCorrectness:
    @pytest.mark.parametrize("layout", [(1, 2), (2, 1), (2, 2), (2, 3)])
    def test_halos_match_global_field(self, layout):
        decomp, globals_, results = exchange_world(14, 40, *layout)
        for rank, locs in enumerate(results):
            sub = decomp.subdomain(rank)
            sl = sub.local_extent_global()
            expected = globals_[0][:, sl[0], sl[1]]
            np.testing.assert_array_equal(locs[0], expected)

    def test_multiple_fields_in_one_round(self):
        decomp, globals_, results = exchange_world(14, 40, 2, 2, nfields=3)
        for rank, locs in enumerate(results):
            sub = decomp.subdomain(rank)
            sl = sub.local_extent_global()
            for loc, g in zip(locs, globals_):
                np.testing.assert_array_equal(loc, g[:, sl[0], sl[1]])

    def test_corner_cells_filled(self):
        """The two-phase exchange must deliver diagonal-neighbour data
        (needed by curl(curl(.)) compositions)."""
        decomp, globals_, results = exchange_world(14, 40, 2, 2)
        # interior-corner tile: rank 0's south-east halo corner exists
        sub = decomp.subdomain(0)
        loc = results[0][0]
        assert sub.halo_s and sub.halo_e
        corner = loc[:, -HALO:, -HALO:]
        assert np.isfinite(corner).all()

    def test_single_rank_noop(self):
        _, globals_, results = exchange_world(14, 40, 1, 1)
        np.testing.assert_array_equal(results[0][0], globals_[0])


class TestPackedVsLegacy:
    def test_legacy_path_bitwise_identical(self):
        """The ``_TAG_STRIDE`` per-field wire format and the packed
        one-buffer-per-neighbour format fill identical halo values."""
        _, _, packed = exchange_world(14, 40, 2, 2, nfields=3, packed=True)
        _, _, legacy = exchange_world(14, 40, 2, 2, nfields=3, packed=False)
        for locs_p, locs_l in zip(packed, legacy):
            for lp, ll in zip(locs_p, locs_l):
                np.testing.assert_array_equal(lp, ll)

    @pytest.mark.parametrize("packed,factor", [(True, 1), (False, 3)])
    def test_message_counts(self, packed, factor):
        """Packing coalesces the per-field messages: nfields=3 costs
        exactly as many messages as nfields=1."""
        decomp = PanelDecomposition(14, 40, 2, 2)

        def prog(comm):
            cart = create_cart(comm, (2, 2))
            sub = decomp.subdomain(comm.rank)
            ex = HaloExchanger(cart, sub, packed=packed)
            fields = [np.zeros((3, *sub.local_shape)) for _ in range(3)]
            before = comm.messages_sent
            ex.exchange(fields)
            # one message per neighbour per exchange on the packed path
            # (each neighbour sits in exactly one of the two phases)
            n_neighbours = sum(1 for direction in ex.nbr.values() if direction >= 0)
            return comm.messages_sent - before, n_neighbours

        for sent, per_field in SimMPI.run(4, prog):
            assert sent == factor * per_field

    def test_bytes_accounting_packed_equals_legacy(self):
        """Coalescing moves the same bytes — only the message count
        drops — so the perf model's volume formula holds on both paths."""
        decomp = PanelDecomposition(14, 40, 2, 2)

        def prog(comm):
            cart = create_cart(comm, (2, 2))
            sub = decomp.subdomain(comm.rank)
            totals = []
            for packed in (True, False):
                ex = HaloExchanger(cart, sub, packed=packed)
                fields = [np.zeros((3, *sub.local_shape)) for _ in range(2)]
                before = comm.bytes_sent
                ex.exchange(fields, tag_base=0 if packed else 64)
                totals.append(comm.bytes_sent - before)
            return totals[0], totals[1], ex.bytes_per_exchange(3, 2)

        for packed_bytes, legacy_bytes, predicted in SimMPI.run(4, prog):
            assert packed_bytes == legacy_bytes == predicted


class TestConsistencyChecks:
    def test_mismatched_halo_widths_detected(self):
        decomp = PanelDecomposition(14, 40, 2, 2)

        def prog(comm):
            cart = create_cart(comm, (2, 2))
            # wrong subdomain for this rank: neighbour mismatch
            sub = decomp.subdomain((comm.rank + 1) % 4)
            try:
                HaloExchanger(cart, sub)
            except ValueError as exc:
                return "inconsistent" in str(exc)
            return False

        assert any(SimMPI.run(4, prog))

    def test_bytes_accounting(self):
        decomp = PanelDecomposition(14, 40, 2, 2)

        def prog(comm):
            cart = create_cart(comm, (2, 2))
            sub = decomp.subdomain(comm.rank)
            ex = HaloExchanger(cart, sub)
            nr = 3
            loc = np.zeros((nr, *sub.local_shape))
            before = comm.bytes_sent
            ex.exchange([loc])
            actual = comm.bytes_sent - before
            return actual, ex.bytes_per_exchange(nr, 1)

        for actual, predicted in SimMPI.run(4, prog):
            assert actual == predicted
