import numpy as np
import pytest

from repro.checkers.fingerprint import assert_bitwise_equal
from repro.core import RunConfig, YinYangDynamo
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.parallel.parallel_solver import run_parallel_dynamo


@pytest.fixture(scope="module")
def params():
    return MHDParameters.laptop_demo()


@pytest.fixture(scope="module")
def config(params):
    return RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3, amp_temperature=1e-2)


@pytest.fixture(scope="module")
def serial_run(config):
    dyn = YinYangDynamo(config)
    for _ in range(4):
        dyn.step()
    return dyn


class TestSerialEquivalence:
    """The paper's flat-MPI code must reproduce the serial solver; our
    implementation is engineered to match to the last ulp (same
    stencils, same association order)."""

    @pytest.mark.parametrize("layout", [(1, 2), (2, 1), (2, 2)])
    def test_fields_match_serial(self, config, serial_run, layout):
        par = run_parallel_dynamo(config, *layout, 4)
        assert par.steps == 4
        for panel in (Panel.YIN, Panel.YANG):
            for (name, a), b in zip(
                par.states[panel].named_arrays(), serial_run.state[panel].arrays()
            ):
                scale = max(1.0, float(np.abs(b).max()))
                assert np.abs(a - b).max() < 1e-12 * scale, (panel, name)

    def test_adaptive_dt_matches_serial_exactly(self, params):
        cfg = RunConfig(nr=7, nth=12, nph=36, params=params, dt=None,
                        amp_temperature=1e-2)
        ser = YinYangDynamo(cfg)
        ser.run(5, record_every=0)
        par = run_parallel_dynamo(cfg, 2, 2, 5)
        assert par.time == ser.time  # identical float dt sequence

    def test_world_size_must_be_even_pair(self, config):
        from repro.parallel.parallel_solver import ParallelYinYangDynamo
        from repro.parallel.simmpi import SimMPI

        def prog(world):
            try:
                ParallelYinYangDynamo(world, config, 2, 2)
            except ValueError as exc:
                return "world size" in str(exc)
            return False

        assert all(SimMPI.run(3, prog))


class TestGather:
    def test_gather_covers_all_points(self, config):
        par = run_parallel_dynamo(config, 2, 2, 1)
        for panel in (Panel.YIN, Panel.YANG):
            for arr in par.states[panel].arrays():
                assert np.isfinite(arr).all()

    def test_dt_history_length(self, config):
        par = run_parallel_dynamo(config, 1, 2, 3)
        assert len(par.dt_history) == 3
        assert all(dt == pytest.approx(1e-3) for dt in par.dt_history)


class TestBackendsAndWireFormats:
    """The packed wire format (default) and the process backend must
    both reproduce the serial solver bitwise."""

    def test_process_backend_matches_serial(self, config, serial_run):
        par = run_parallel_dynamo(config, 1, 2, 4, backend="process",
                                  timeout=240.0)
        assert par.steps == 4
        assert_bitwise_equal(par.states, serial_run.state,
                             context="process backend vs serial")

    def test_legacy_wire_format_matches_packed(self, config, serial_run):
        """Same layout, both wire formats: the fields must agree to the
        bit — packing is pure message coalescing."""
        packed = run_parallel_dynamo(config, 2, 1, 4, packed=True)
        legacy = run_parallel_dynamo(config, 2, 1, 4, packed=False)
        assert_bitwise_equal(packed.states, legacy.states,
                             context="packed vs legacy wire format")
        # and both stay within the seed suite's serial tolerance
        for panel in (Panel.YIN, Panel.YANG):
            for (name, a), b in zip(
                legacy.states[panel].named_arrays(),
                serial_run.state[panel].arrays(),
            ):
                scale = max(1.0, float(np.abs(b).max()))
                assert np.abs(a - b).max() < 1e-12 * scale, (panel, name)

    def test_contracts_and_sanitizers_bitwise_smoke(self):
        """A 2-rank dynamo under ``REPRO_CONTRACTS=1 REPRO_SANITIZE=1``
        combined must still reproduce the serial solver bitwise: neither
        checker may perturb the numerics.  Contracts arm at import time,
        so the run happens in a child interpreter with the env set."""
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.checkers.contracts import contracts_enabled\n"
            "from repro.checkers.sanitize import sanitize_enabled\n"
            "import repro.fd.stencils as st\n"
            "assert contracts_enabled() and sanitize_enabled()\n"
            "assert st.diff.__repro_contract__  # boundaries really armed\n"
            "from repro.core import RunConfig, YinYangDynamo\n"
            "from repro.grids.component import Panel\n"
            "from repro.mhd.parameters import MHDParameters\n"
            "from repro.parallel.parallel_solver import run_parallel_dynamo\n"
            "cfg = RunConfig(nr=7, nth=12, nph=36,\n"
            "                params=MHDParameters.laptop_demo(), dt=1e-3,\n"
            "                amp_temperature=1e-2)\n"
            "ser = YinYangDynamo(cfg)\n"
            "for _ in range(2):\n"
            "    ser.step()\n"
            "par = run_parallel_dynamo(cfg, 1, 1, 2)\n"
            "from repro.checkers.fingerprint import assert_bitwise_equal\n"
            "assert_bitwise_equal(par.states, ser.state,\n"
            "                     context='contracts+sanitize run')\n"
            "print('BITWISE_OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": "src", "REPRO_CONTRACTS": "1",
                 "REPRO_SANITIZE": "1", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert "BITWISE_OK" in out.stdout, out.stderr

    def test_per_rank_step_seconds_reported(self, config):
        par = run_parallel_dynamo(config, 1, 2, 2)
        assert len(par.rank_step_seconds) == 4  # 2 panels x 1 x 2
        assert all(s > 0.0 for s in par.rank_step_seconds)
