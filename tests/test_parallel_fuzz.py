"""Randomised stress tests of the SimMPI runtime.

The solver exercises fixed communication patterns; these tests fuzz the
runtime with random (but deterministic, seeded) message graphs, mixed
collectives and communicator trees, checking global invariants:
everything sent is received, collectives agree across ranks, and no
pattern deadlocks (buffered sends + matched receives).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.simmpi import SimMPI


@st.composite
def message_graphs(draw):
    """A random directed multigraph of messages among <= 5 ranks."""
    n = draw(st.integers(2, 5))
    n_msgs = draw(st.integers(1, 12))
    edges = [
        (
            draw(st.integers(0, n - 1)),  # source
            draw(st.integers(0, n - 1)),  # dest
            draw(st.integers(0, 3)),  # tag
            draw(st.integers(1, 50)),  # payload length
        )
        for _ in range(n_msgs)
    ]
    return n, edges


class TestRandomPointToPoint:
    @settings(max_examples=15, deadline=None)
    @given(message_graphs())
    def test_everything_sent_is_received(self, graph):
        n, edges = graph

        def prog(comm):
            me = comm.rank
            my_sends = [e for e in edges if e[0] == me]
            my_recvs = [e for e in edges if e[1] == me]
            # post all receives first (non-blocking), then send
            reqs = [
                comm.Irecv(source=src, tag=tag)
                for (src, _dst, tag, _ln) in my_recvs
            ]
            for (_src, dst, tag, ln) in my_sends:
                comm.Send(np.full(ln, me, dtype=np.float64), dest=dst, tag=tag)
            got = [np.asarray(r.wait()) for r in reqs]
            return sorted((arr.size, int(arr[0])) for arr in got)

        results = SimMPI.run(n, prog, timeout=10.0)
        for rank, got in enumerate(results):
            expected = sorted(
                (ln, src) for (src, dst, _tag, ln) in edges if dst == rank
            )
            assert got == expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    def test_ring_pass_any_size(self, n, seed):
        """Token ring: rank 0's payload travels every rank unchanged."""
        rng = np.random.default_rng(seed)
        token = rng.normal(size=8)

        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            if comm.rank == 0:
                comm.Send(token, dest=nxt, tag=1)
                back = comm.Recv(source=prev, tag=1)
                return np.asarray(back)
            data = comm.Recv(source=prev, tag=1)
            comm.Send(data, dest=nxt, tag=1)
            return None

        results = SimMPI.run(n, prog, timeout=10.0)
        np.testing.assert_array_equal(results[0], token)


class TestRandomCollectives:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_mixed_collective_sequences_agree(self, n, seed):
        """A random interleaving of collectives gives every rank the
        same results (the SPMD contract)."""
        rng = np.random.default_rng(seed)
        ops = rng.choice(["allreduce", "allgather", "bcast", "barrier"], size=6)

        def prog(comm):
            out = []
            for k, op in enumerate(ops):
                if op == "allreduce":
                    out.append(comm.allreduce(comm.rank * (k + 1)))
                elif op == "allgather":
                    out.append(tuple(comm.allgather(comm.rank + k)))
                elif op == "bcast":
                    out.append(comm.bcast(f"msg{k}" if comm.rank == k % comm.size else None,
                                          root=k % comm.size))
                else:
                    comm.barrier()
                    out.append("b")
            return out

        results = SimMPI.run(n, prog, timeout=10.0)
        for r in results[1:]:
            assert r == results[0]

    @settings(max_examples=8, deadline=None)
    @given(st.integers(4, 8), st.integers(2, 3))
    def test_nested_splits(self, n, levels):
        """Recursive halving by split keeps rank arithmetic consistent."""

        def prog(comm):
            c = comm
            path = []
            for _ in range(levels):
                if c.size == 1:
                    break
                color = c.rank % 2
                c = c.split(color=color)
                path.append((color, c.rank, c.size))
                total = c.allreduce(1)
                assert total == c.size
            return path

        results = SimMPI.run(n, prog, timeout=10.0)
        assert len(results) == n
