"""Kernel-backend factory: selection, probing, and silent fallback.

``REPRO_KERNELS`` is read at selection time (construction of
:class:`~repro.mhd.equations.PanelEquations`), so these tests drive it
with ``monkeypatch.setenv`` in-process — no subprocesses needed.  The
forced-fallback tests simulate a machine with no C toolchain *and* no
cached build by monkeypatching the probe seam and pointing the build
cache at an empty directory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fd import backend as kernel_backend
from repro.fd import stencils as np_stencils
from repro.fd.ckernels import build


@pytest.fixture
def no_toolchain(monkeypatch, tmp_path):
    """Simulate: no compiler, no cffi, no cached shared object."""
    build.reset()
    monkeypatch.setenv(build._CACHE_ENV, str(tmp_path / "empty-cache"))
    monkeypatch.setattr(
        build, "toolchain_available", lambda: (False, "forced by test")
    )
    yield
    build.reset()  # drop the memoized failure so later tests can load


def test_backend_names_and_detect():
    assert kernel_backend.BACKENDS == ("numpy", "fused", "c")
    infos = kernel_backend.detect()
    assert [b.name for b in infos] == list(kernel_backend.BACKENDS)
    # NumPy paths are always available.
    assert infos[0].available and infos[1].available


def test_default_selection_is_fused(monkeypatch):
    monkeypatch.delenv(kernel_backend.KERNELS_ENV, raising=False)
    assert kernel_backend.requested() == "fused"
    assert kernel_backend.select() == "fused"


def test_env_selects_backend(monkeypatch):
    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "numpy")
    assert kernel_backend.select() == "numpy"
    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "fused")
    assert kernel_backend.select() == "fused"


def test_unknown_env_value_warns_and_defaults(monkeypatch):
    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "fortran")
    with pytest.warns(RuntimeWarning, match="fortran"):
        assert kernel_backend.requested() == "fused"


def test_explicit_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernel_backend.select("fortran")


def test_stencil_module_mapping():
    assert kernel_backend.stencil_module("numpy") is np_stencils
    assert kernel_backend.stencil_module("fused") is np_stencils
    if kernel_backend.probe("c").available:
        from repro.fd.ckernels import stencils as ck_stencils

        assert kernel_backend.stencil_module("c") is ck_stencils


def test_probe_c_without_toolchain(no_toolchain):
    info = kernel_backend.probe("c")
    assert not info.available
    assert info.detail  # says why


def test_select_c_falls_back_silently(no_toolchain, monkeypatch):
    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "c")
    assert kernel_backend.select() == "fused"
    assert kernel_backend.compiled_elementwise() is None


def test_equations_fall_back_and_still_run(no_toolchain, monkeypatch):
    """REPRO_KERNELS=c with no toolchain: construction and RHS succeed
    on the fused path, and the instance reports what actually ran."""
    from repro.grids.yinyang import YinYangGrid
    from repro.mhd.equations import PanelEquations
    from repro.mhd.initial import conduction_state
    from repro.mhd.parameters import MHDParameters

    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "c")
    params = MHDParameters.laptop_demo()
    grid = YinYangGrid(7, 8, 12, ri=params.ri, ro=params.ro)
    eq = PanelEquations(grid.yin, params, (0.0, 0.0, params.omega))
    assert eq.kernel_backend == "fused"
    out = eq.rhs(conduction_state(grid.yin, params))
    assert np.all(np.isfinite(out.rho))


def test_parallel_run_reports_fallback_backend(no_toolchain, monkeypatch):
    """A thread-backend run with REPRO_KERNELS=c and no toolchain must
    finish and report the backend that actually executed."""
    from repro.core.config import RunConfig
    from repro.parallel.parallel_solver import run_parallel_dynamo

    monkeypatch.setenv(kernel_backend.KERNELS_ENV, "c")
    cfg = RunConfig(nr=7, nth=8, nph=24, dt=1e-3, amp_temperature=1e-2)
    res = run_parallel_dynamo(cfg, 1, 1, 2, backend="thread")
    assert res.kernel_backend == "fused"
    assert res.steps == 2


def test_build_status_reports_cache_state(no_toolchain):
    status = build.build_status()
    assert status["built"] is False
    assert status["loaded"] is False
    assert status["toolchain_ok"] is False
    assert "empty-cache" in status["cache_dir"]


@pytest.mark.skipif(
    not kernel_backend.probe("c").available,
    reason="C kernel backend unavailable",
)
def test_cached_so_loads_without_toolchain(monkeypatch):
    """Once the shared object is cached, load() must not require a
    compiler — deployment machines only need the cache directory."""
    build.load()  # ensure the cache is warm
    build.reset()
    monkeypatch.setattr(
        build, "toolchain_available", lambda: (False, "forced by test")
    )
    try:
        lib, ffi = build.load()
        assert hasattr(lib, "ck_diff")
    finally:
        build.reset()
