import numpy as np
import pytest

from repro.grids.yinyang import YinYangGrid
from repro.viz.columns import (
    ColumnCensus,
    column_profile,
    count_columns,
    equatorial_vorticity,
    synthetic_columns,
)


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(9, 20, 58)


class TestCountColumns:
    def test_pure_sinusoid(self):
        phi = np.linspace(-np.pi, np.pi, 256, endpoint=False)
        census = count_columns(phi, np.sin(6 * phi))
        assert census.n_cyclonic == 6
        assert census.n_anticyclonic == 6
        assert census.balanced

    def test_wrap_around_seam_not_double_counted(self):
        """cos(m phi) peaks exactly at the +-pi seam."""
        phi = np.linspace(-np.pi, np.pi, 256, endpoint=False)
        census = count_columns(phi, np.cos(4 * phi))
        assert census.n_cyclonic == 4
        assert census.n_anticyclonic == 4

    def test_zero_field(self):
        phi = np.linspace(-np.pi, np.pi, 64, endpoint=False)
        census = count_columns(phi, np.zeros(64))
        assert census.n_columns == 0

    def test_threshold_filters_weak_ripples(self):
        phi = np.linspace(-np.pi, np.pi, 512, endpoint=False)
        w = np.sin(2 * phi) + 0.05 * np.sin(40 * phi)
        census = count_columns(phi, w, threshold_frac=0.3)
        assert census.n_cyclonic == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            count_columns(np.zeros(10), np.zeros((2, 5)))

    def test_single_sign_blob(self):
        phi = np.linspace(-np.pi, np.pi, 128, endpoint=False)
        w = np.exp(-((phi - 0.5) ** 2) / 0.05)
        census = count_columns(phi, w)
        assert census.n_cyclonic == 1
        assert census.n_anticyclonic == 0
        assert not census.balanced or census.n_columns == 1


class TestSyntheticColumns:
    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_census_recovers_mode_number(self, grid, m):
        """Fig. 2's alternating cyclones: m pairs in, m pairs out."""
        states = synthetic_columns(grid, m=m)
        census = column_profile(grid, states, nphi=512)
        assert census.n_cyclonic == m
        assert census.n_anticyclonic == m
        assert census.balanced

    def test_vorticity_slice_shapes(self, grid):
        states = synthetic_columns(grid, m=5)
        phi, wz = equatorial_vorticity(grid, states, nphi=128)
        assert wz.shape == (grid.yin.nr, 128)
        assert phi.shape == (128,)

    def test_panels_agree_across_seam(self, grid):
        """The vorticity slice merges both panels; the synthetic flow is
        globally defined so the merged slice must be smooth."""
        states = synthetic_columns(grid, m=6)
        _, wz = equatorial_vorticity(grid, states, nphi=512)
        mid = wz[wz.shape[0] // 2]
        scale = np.abs(mid).max()
        jumps = np.abs(np.diff(mid)).max()
        assert jumps < 0.5 * scale

    def test_radius_recorded(self, grid):
        states = synthetic_columns(grid, m=4)
        census = column_profile(grid, states, radius_frac=0.5)
        assert grid.yin.ri < census.radius < grid.yin.ro


class TestCensusDataclass:
    def test_totals(self):
        c = ColumnCensus(n_cyclonic=3, n_anticyclonic=4, radius=0.5, threshold=0.1)
        assert c.n_columns == 7
        assert c.balanced
