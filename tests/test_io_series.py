import numpy as np
import pytest

from repro.io.series import TimeSeriesRecorder


class TestAppend:
    def test_basic_recording(self):
        rec = TimeSeriesRecorder(["ke", "me"])
        rec.append(0.0, ke=1.0, me=2.0)
        rec.append(0.1, ke=1.5, me=2.5)
        assert len(rec) == 2
        np.testing.assert_array_equal(rec.times, [0.0, 0.1])
        np.testing.assert_array_equal(rec.channel("ke"), [1.0, 1.5])

    def test_missing_channel_rejected(self):
        rec = TimeSeriesRecorder(["ke", "me"])
        with pytest.raises(ValueError, match="missing"):
            rec.append(0.0, ke=1.0)

    def test_unknown_channel_rejected(self):
        rec = TimeSeriesRecorder(["ke"])
        with pytest.raises(ValueError, match="unknown"):
            rec.append(0.0, ke=1.0, bogus=2.0)

    def test_time_must_not_decrease(self):
        rec = TimeSeriesRecorder(["ke"])
        rec.append(1.0, ke=1.0)
        with pytest.raises(ValueError, match="nondecreasing"):
            rec.append(0.5, ke=1.0)

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            TimeSeriesRecorder(["a", "a"])

    def test_empty_channel_list_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder([])

    def test_last(self):
        rec = TimeSeriesRecorder(["ke"])
        rec.append(0.0, ke=3.0)
        rec.append(1.0, ke=4.0)
        assert rec.last() == {"time": 1.0, "ke": 4.0}

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeriesRecorder(["ke"]).last()

    def test_unknown_channel_lookup(self):
        rec = TimeSeriesRecorder(["ke"])
        with pytest.raises(KeyError):
            rec.channel("nope")


class TestGrowthRate:
    def test_recovers_exponential_rate(self):
        rec = TimeSeriesRecorder(["me"])
        lam = 2.3
        for t in np.linspace(0, 1, 20):
            rec.append(t, me=np.exp(lam * t))
        assert rec.growth_rate("me", window=20) == pytest.approx(lam, rel=1e-6)

    def test_needs_positive_values(self):
        rec = TimeSeriesRecorder(["x"])
        for t in range(12):
            rec.append(float(t), x=-1.0)
        with pytest.raises(ValueError, match="positive"):
            rec.growth_rate("x")

    def test_needs_enough_samples(self):
        rec = TimeSeriesRecorder(["x"])
        rec.append(0.0, x=1.0)
        with pytest.raises(ValueError, match="not enough"):
            rec.growth_rate("x")


class TestPersistence:
    def test_round_trip(self, tmp_path):
        rec = TimeSeriesRecorder(["ke", "me"])
        for t in np.linspace(0, 1, 7):
            rec.append(float(t), ke=float(t**2), me=float(1 + t))
        path = rec.save(tmp_path / "series.npz")
        back = TimeSeriesRecorder.load(path)
        assert set(back.channels) == {"ke", "me"}
        np.testing.assert_allclose(back.times, rec.times)
        np.testing.assert_allclose(back.channel("me"), rec.channel("me"))
