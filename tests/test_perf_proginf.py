import re

import pytest

from repro.perf.model import PerformanceModel
from repro.perf.proginf import format_mpiproginf, list1_report, proginf_for_run


@pytest.fixture(scope="module")
def model():
    m = PerformanceModel()
    m.calibrate_kernel_efficiency()
    return m


@pytest.fixture(scope="module")
def counters(model):
    pred = model.predict(511, 514, 1538, 4096)
    # synthesising 4096 processes is cheap but pointless for assertions:
    # use a representative subset size via the same prediction
    return proginf_for_run(pred, real_time=453.0)


class TestCounters(object):
    def test_process_count(self, counters):
        assert len(counters) == 4096

    def test_gflops_reproduces_paper_number(self, counters):
        """Total FLOP / total user time x nprocs ~ 15.2 TFlops."""
        flop_total = sum(c.flop_count for c in counters)
        user_total = sum(c.user_time for c in counters)
        gflops = flop_total / user_total / 1e9 * len(counters)
        assert gflops == pytest.approx(15181.8, rel=0.02)

    def test_avl_mean_near_list1(self, counters):
        import numpy as np

        avls = np.array([c.average_vector_length for c in counters])
        assert avls.mean() == pytest.approx(251.6, rel=0.01)

    def test_vector_ratio_99(self, counters):
        import numpy as np

        ratios = np.array([c.vector_operation_ratio for c in counters])
        assert ratios.mean() == pytest.approx(99.0, abs=0.15)

    def test_memory_near_one_gb(self, counters):
        import numpy as np

        mem = np.array([c.memory_mb for c in counters])
        assert 900 < mem.mean() < 1300  # List 1: ~1.1 GB per process


class TestReportFormat(object):
    def test_layout_headers(self, counters):
        text = format_mpiproginf(counters[:64])
        assert text.startswith("MPI Program Information:")
        assert "Global Data of 64 processes" in text
        assert "Overall Data:" in text
        for label in (
            "Real Time (sec)", "Vector Time (sec)", "FLOP Count",
            "MFLOPS", "Average Vector Length", "Vector Operation Ratio (%)",
            "GFLOPS (rel. to User Time)", "Memory size used (GB)",
        ):
            assert label in text

    def test_min_max_rank_brackets(self, counters):
        text = format_mpiproginf(counters[:16])
        # every per-process row carries [universe, rank] tags
        assert len(re.findall(r"\[0,\d+\]", text)) >= 26

    def test_full_list1_report(self):
        text = list1_report()
        m = re.search(r"GFLOPS \(rel\. to User Time\)\s*:\s*([0-9.]+)", text)
        assert m, text
        gflops = float(m.group(1))
        # the paper's highlighted 15.2 TFlops
        assert gflops == pytest.approx(15181.8, rel=0.03)
