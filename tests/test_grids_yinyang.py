import numpy as np
import pytest

from repro.grids.component import Panel
from repro.grids.yinyang import YinYangGrid


@pytest.fixture(scope="module")
def grid():
    return YinYangGrid(7, 16, 46)


class TestStructure:
    def test_panels_identical_geometry(self, grid):
        np.testing.assert_array_equal(grid.yin.theta, grid.yang.theta)
        np.testing.assert_array_equal(grid.yin.phi, grid.yang.phi)
        assert grid.yin.panel is Panel.YIN
        assert grid.yang.panel is Panel.YANG

    def test_npoints_counts_both_panels(self, grid):
        assert grid.npoints == 2 * grid.yin.npoints

    def test_panel_lookup(self, grid):
        assert grid.panel(Panel.YIN) is grid.yin
        assert grid.panel(Panel.YANG) is grid.yang

    def test_paper_flagship_point_count(self):
        """511 x 514 x 1538 x 2 ~ 8.1e8 points (Table III's row)."""
        n = 511 * 514 * 1538 * 2
        assert n == pytest.approx(8.1e8, rel=0.01)


class TestCoverage:
    def test_full_sphere_coverage(self, grid):
        assert grid.coverage_check(20000) == 1.0

    def test_overlap_mask_fraction(self, grid):
        """Solid-angle-weighted overlap fraction matches the analytic
        value for the *extended* panels (coarse grids have wide margins,
        so the overlap is well above the minimal-panel 6 %)."""
        from repro.grids.dissection import extended_overlap_fraction

        g0 = grid.yin
        expected = extended_overlap_fraction(
            g0.extra_theta * g0.dtheta, g0.extra_phi * g0.dphi
        )
        for panel in (Panel.YIN, Panel.YANG):
            g = grid.panel(panel)
            mask = grid.overlap_mask[panel]
            w = g.cell_solid_angle()
            frac = float((mask * w).sum()) / (4 * np.pi)
            assert frac == pytest.approx(expected, rel=0.10)

    def test_overlap_shrinks_with_resolution(self):
        """The margin-induced extra overlap vanishes as the mesh refines,
        approaching the paper's resolution-independent ~6 %."""
        from repro.grids.dissection import extended_overlap_fraction

        coarse = YinYangGrid(5, 14, 40).yin
        fine = YinYangGrid(5, 42, 120).yin
        f_coarse = extended_overlap_fraction(
            coarse.extra_theta * coarse.dtheta, coarse.extra_phi * coarse.dphi
        )
        f_fine = extended_overlap_fraction(
            fine.extra_theta * fine.dtheta, fine.extra_phi * fine.dphi
        )
        assert f_fine < f_coarse
        assert f_fine < 0.15
        # at the paper's resolution the margins are negligible: ~6 %
        flagship = YinYangGrid(5, 514, 1538).yin
        f_paper = extended_overlap_fraction(
            flagship.extra_theta * flagship.dtheta,
            flagship.extra_phi * flagship.dphi,
        )
        assert f_paper == pytest.approx(0.0607, abs=0.007)

    def test_overlap_symmetry(self, grid):
        a = grid.overlap_mask[Panel.YIN].mean()
        b = grid.overlap_mask[Panel.YANG].mean()
        assert a == pytest.approx(b, rel=1e-12)


class TestSampling:
    def test_sample_scalar_consistency_in_overlap(self, grid):
        """Both panels sample the same global function: in the overlap
        the values must agree at the shared physical points (here checked
        via the interpolation residual being small)."""
        f = grid.sample_scalar(lambda r, th, ph: r * np.cos(th) + np.sin(ph) * np.sin(th))
        fy, fe = f[Panel.YIN].copy(), f[Panel.YANG].copy()
        grid.apply_overset_scalar(fy, fe)
        assert np.max(np.abs(fy - f[Panel.YIN])) < 5e-3
        assert np.max(np.abs(fe - f[Panel.YANG])) < 5e-3

    def test_sample_shapes(self, grid):
        f = grid.sample_scalar(lambda r, th, ph: th * 0 + 1.0)
        assert f[Panel.YIN].shape == grid.shape
        assert f[Panel.YANG].shape == grid.shape


class TestOversetApplication:
    def test_scalar_idempotent(self, grid):
        """Applying the overset condition twice changes nothing: donors
        are never ring points, so the second pass sees the same donors."""
        rng = np.random.default_rng(3)
        fy = rng.normal(size=grid.shape)
        fe = rng.normal(size=grid.shape)
        grid.apply_overset_scalar(fy, fe)
        fy2, fe2 = fy.copy(), fe.copy()
        grid.apply_overset_scalar(fy2, fe2)
        np.testing.assert_array_equal(fy, fy2)
        np.testing.assert_array_equal(fe, fe2)

    def test_vector_idempotent(self, grid):
        rng = np.random.default_rng(4)
        vy = tuple(rng.normal(size=grid.shape) for _ in range(3))
        ve = tuple(rng.normal(size=grid.shape) for _ in range(3))
        grid.apply_overset_vector(vy, ve)
        vy2 = tuple(c.copy() for c in vy)
        ve2 = tuple(c.copy() for c in ve)
        grid.apply_overset_vector(vy2, ve2)
        for a, b in zip(vy + ve, vy2 + ve2):
            np.testing.assert_array_equal(a, b)

    def test_interior_untouched(self, grid):
        rng = np.random.default_rng(5)
        fy = rng.normal(size=grid.shape)
        fe = rng.normal(size=grid.shape)
        fy0, fe0 = fy.copy(), fe.copy()
        grid.apply_overset_scalar(fy, fe)
        fd = grid.yin.fd_mask()
        np.testing.assert_array_equal(fy[:, fd], fy0[:, fd])
        np.testing.assert_array_equal(fe[:, fd], fe0[:, fd])
