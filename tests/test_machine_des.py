import numpy as np
import pytest

from repro.machine.des import (
    per_rank_flop_rates,
    simulate_step,
    validate_against_closed_form,
)
from repro.perf.model import PerformanceModel


@pytest.fixture(scope="module")
def model():
    m = PerformanceModel()
    m.calibrate_kernel_efficiency()
    return m


class TestSimulation:
    def test_rank_count(self, model):
        sim = simulate_step(model, 255, 514, 1538, 1200)
        assert sim.compute_times.size == 1200
        assert sim.comm_times.size == 1200

    def test_makespan_bounds(self, model):
        sim = simulate_step(model, 255, 514, 1538, 1200)
        assert sim.makespan >= float(np.max(sim.compute_times))
        assert sim.makespan > 0

    def test_load_imbalance_from_ceil_division(self, model):
        """514/1538 do not divide evenly: the imbalance is a few %."""
        sim = simulate_step(model, 511, 514, 1538, 4096)
        assert 1.0 <= sim.load_imbalance < 1.25

    def test_comm_fraction_near_paper(self, model):
        sim = simulate_step(model, 511, 514, 1538, 4096)
        assert 0.03 < sim.mean_comm_fraction < 0.25

    def test_edge_tiles_carry_overset(self, model):
        sim = simulate_step(model, 255, 514, 1538, 1200)
        # comm time is not uniform: edge tiles pay the overset messages
        assert sim.comm_times.max() > sim.comm_times.min()


class TestClosedFormAgreement:
    @pytest.mark.parametrize(
        "config", [(511, 4096), (255, 3888), (255, 1200)]
    )
    def test_within_ten_percent(self, model, config):
        nr, nproc = config
        ratio = validate_against_closed_form(model, nr, 514, 1538, nproc)
        assert ratio == pytest.approx(1.0, abs=0.10)


class TestFlopRates:
    def test_rates_positive_and_under_peak(self, model):
        sim = simulate_step(model, 511, 514, 1538, 4096)
        rates = per_rank_flop_rates(model, sim, 511, 514, 1538)
        assert len(rates) == 4096
        assert all(0.0 < r < model.spec.ap_peak_gflops for r in rates)
