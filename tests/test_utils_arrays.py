import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.arrays import (
    as_float_array,
    assert_shape,
    ghost_interior,
    interior_slices,
    pad_ghost,
    periodic_wrap,
    rel_linf,
)


class TestAsFloatArray:
    def test_converts_lists(self):
        a = as_float_array([1, 2, 3])
        assert a.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"]

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="not interpretable"):
            as_float_array("nope", name="field")


class TestShapes:
    def test_assert_shape_ok(self):
        assert_shape(np.zeros((2, 3)), (2, 3))

    def test_assert_shape_raises(self):
        with pytest.raises(ValueError, match="expected"):
            assert_shape(np.zeros((2, 3)), (3, 2), name="field")


class TestGhosts:
    def test_pad_then_interior_roundtrip(self):
        inner = np.arange(24.0).reshape(2, 3, 4)
        padded = pad_ghost(inner)
        assert padded.shape == (4, 5, 6)
        np.testing.assert_array_equal(ghost_interior(padded), inner)

    def test_pad_fill_value(self):
        padded = pad_ghost(np.ones((2, 2)), fill=-7.0)
        assert padded[0, 0] == -7.0

    def test_interior_slices_ndim(self):
        sl = interior_slices(3, ng=2)
        assert sl == (slice(2, -2),) * 3


class TestRelLinf:
    def test_zero_for_equal(self):
        a = np.ones(5)
        assert rel_linf(a, a) == 0.0

    def test_relative_normalisation(self):
        a = np.array([1000.0])
        b = np.array([1001.0])
        assert rel_linf(a, b) == pytest.approx(1.0 / 1001.0)

    def test_empty_arrays(self):
        assert rel_linf(np.array([]), np.array([])) == 0.0


class TestPeriodicWrap:
    @given(st.integers(-100, 100), st.integers(1, 17))
    def test_always_in_range(self, idx, n):
        w = periodic_wrap(np.array([idx]), n)[0]
        assert 0 <= w < n

    @given(st.integers(-100, 100), st.integers(1, 17))
    def test_congruent(self, idx, n):
        w = periodic_wrap(np.array([idx]), n)[0]
        assert (w - idx) % n == 0
