"""Dynamic happens-before layer: clocks, wait-for graphs, deadlock cycles.

Unit-level coverage of :mod:`repro.checkers.hb` (vector-clock algebra,
``PendingOp``/``WaitForGraph``, the ``HBTracker`` buffer windows) plus
end-to-end induced hangs on all three in-house backends: a two-rank
cross-receive must raise :class:`DeadlockError` *naming the blocked
cycle* on the thread, process and socket launchers.  Rank functions for
the spawn/pickle paths are module-level.
"""

import contextlib
import threading

import numpy as np
import pytest

from repro.checkers.hb import (
    HBTracker,
    PendingOp,
    WaitForGraph,
    activate_tracker,
    active_tracker,
    deactivate_tracker,
    dominates,
    merge_clocks,
    note_buffer_release,
)
from repro.parallel.mpimpi import current_pending_op
from repro.parallel.procmpi import ProcMPI, _OpRegister
from repro.parallel.simmpi import DeadlockError, DeadlockTimeout, SimMPI
from repro.parallel.sockmpi import SockMPI, worker_join


# --------------------------------------------------------------------------
# vector clocks
# --------------------------------------------------------------------------


class TestVectorClocks:
    def test_merge_elementwise_max(self):
        assert merge_clocks((1, 5, 0), (3, 2, 0)) == (3, 5, 0)

    def test_merge_none_is_zero_clock(self):
        assert merge_clocks(None, (1, 2)) == (1, 2)
        assert merge_clocks((1, 2), None) == (1, 2)

    def test_dominates_is_elementwise_ge(self):
        assert dominates((2, 3), (2, 3))
        assert dominates((3, 3), (2, 3))
        assert not dominates((3, 2), (2, 3))

    def test_dominates_none_rules(self):
        # anything happens-after the zero clock; an unknown clock
        # dominates nothing
        assert dominates((0, 0), None)
        assert not dominates(None, (0, 0))


# --------------------------------------------------------------------------
# PendingOp / WaitForGraph
# --------------------------------------------------------------------------


class TestPendingOp:
    def test_dict_roundtrip(self):
        op = PendingOp(rank=2, kind="Recv", comm="world", source=1, tag=7,
                       detail="halo south")
        back = PendingOp.from_dict(op.as_dict())
        assert (back.rank, back.kind, back.source, back.tag) == (2, "Recv", 1, 7)
        assert back.detail == "halo south"

    def test_describe_recv_and_any(self):
        op = PendingOp(rank=0, kind="Recv", source=3, tag=9)
        assert "Recv(source=3, tag=9)" in op.describe()
        anyop = PendingOp(rank=0, kind="Recv", source=None, tag=None)
        assert "Recv(source=ANY, tag=ANY)" in anyop.describe()

    def test_describe_collective(self):
        op = PendingOp(rank=1, kind="collective", comm="yin", seq=4,
                       members=(0, 1, 2), detail="allreduce")
        text = op.describe()
        assert "collective allreduce" in text and "seq=4" in text


class TestWaitForGraph:
    def test_enter_exit_snapshot(self):
        wfg = WaitForGraph(3)
        wfg.enter(PendingOp(rank=1, kind="Recv", source=0))
        snap = wfg.pending_snapshot()
        assert snap[0] is None and snap[2] is None
        assert snap[1].source == 0
        wfg.exit(1)
        assert all(op is None for op in wfg.pending_snapshot().values())

    def test_concrete_recv_edges_and_cycle(self):
        snap = {
            0: PendingOp(rank=0, kind="Recv", source=1),
            1: PendingOp(rank=1, kind="Recv", source=0),
        }
        assert WaitForGraph.edges(snap) == {0: [1], 1: [0]}
        cycle = WaitForGraph.find_cycle(snap)
        assert cycle is not None
        assert cycle[0] == cycle[-1] and set(cycle) == {0, 1}

    def test_chain_without_cycle(self):
        # 0 waits on 1, 1 is running: no cycle, just a slow rank
        snap = {0: PendingOp(rank=0, kind="Recv", source=1), 1: None}
        assert WaitForGraph.find_cycle(snap) is None

    def test_any_source_waits_on_all_blocked(self):
        snap = {
            0: PendingOp(rank=0, kind="Recv", source=None),
            1: PendingOp(rank=1, kind="Recv", source=2),
            2: None,
        }
        assert WaitForGraph.edges(snap)[0] == [1]

    def test_collective_waits_on_members_blocked_elsewhere(self):
        # ranks 0,1 at the same rendezvous; rank 2 stuck in a Recv
        coll = dict(kind="collective", comm="world", seq=3, members=(0, 1, 2))
        snap = {
            0: PendingOp(rank=0, **coll),
            1: PendingOp(rank=1, **coll),
            2: PendingOp(rank=2, kind="Recv", source=0),
        }
        edges = WaitForGraph.edges(snap)
        assert edges[0] == [2] and edges[1] == [2]
        cycle = WaitForGraph.find_cycle(snap)
        assert cycle is not None and 2 in cycle

    def test_describe_names_every_rank_and_cycle(self):
        snap = {
            0: PendingOp(rank=0, kind="Recv", source=1),
            1: PendingOp(rank=1, kind="Recv", source=0),
        }
        text = WaitForGraph.describe(snap, [0, 1, 0])
        assert "rank 0: blocked in Recv(source=1" in text
        assert "blocked cycle: 0 -> 1 -> 0" in text

    def test_describe_without_cycle_mentions_alternatives(self):
        text = WaitForGraph.describe({0: None}, None)
        assert "no blocked cycle found" in text

    def test_snapshot_from_dicts_tolerates_gaps(self):
        raw = {0: PendingOp(rank=0, kind="Recv", source=1).as_dict(), 1: None}
        snap = WaitForGraph.snapshot_from_dicts(raw, 3)
        assert snap[0].kind == "Recv" and snap[1] is None and snap[2] is None


# --------------------------------------------------------------------------
# HBTracker: events and buffer windows
# --------------------------------------------------------------------------


class TestHBTracker:
    def test_send_recv_ordering(self):
        t = HBTracker(2)
        c_send = t.send_event(0)
        c_recv = t.recv_event(1, c_send)
        assert dominates(c_recv, c_send)
        assert not dominates(c_send, c_recv)

    def test_collective_joins_all_clocks(self):
        t = HBTracker(3)
        clocks = [t.send_event(r) for r in range(3)]
        joined = t.collective_event(0, clocks)
        assert all(dominates(joined, c) for c in clocks)
        assert t.clock_of(0) == joined

    def test_in_flight_release_is_a_race(self):
        t = HBTracker(2)
        t.register_thread(0)
        buf = np.zeros(4)
        t.send_event(0)
        t.open_window(0, buf, dest=1, site="halo.py:10")
        t.note_release(buf)  # receiver never marked receipt
        (race,) = t.races()
        assert race["src"] == 0 and race["dest"] == 1
        assert "in flight" in race["why"]
        assert t.open_windows() == 0

    def test_concurrent_release_is_a_race(self):
        t = HBTracker(2)
        t.register_thread(0)
        buf = np.zeros(4)
        t.send_event(0)
        t.open_window(0, buf, dest=1, site="s")
        # receiver gets it, but no message ever flows back to rank 0,
        # so the release cannot be ordered after the receipt
        t.recv_event(1, None)
        t.mark_received(1, buf)
        t.note_release(buf)
        (race,) = t.races()
        assert "concurrent with the receipt" in race["why"]

    def test_ordered_release_is_clean(self):
        t = HBTracker(2)
        t.register_thread(0)
        buf = np.zeros(4)
        sc = t.send_event(0)
        t.open_window(0, buf, dest=1, site="s")
        rc = t.recv_event(1, sc)
        t.mark_received(1, buf)
        t.recv_event(0, rc)  # ack flows back: release now dominates receipt
        t.note_release(buf)
        assert t.races() == []

    def test_unregistered_thread_release_is_a_race(self):
        t = HBTracker(2)
        buf = np.zeros(2)
        t.open_window(0, buf, dest=1, site="s")
        t.mark_received(1, buf)
        t.note_release(buf)  # current_rank() is None on this thread
        (race,) = t.races()
        assert "unregistered thread" in race["why"]

    def test_release_without_window_is_ignored(self):
        t = HBTracker(2)
        t.register_thread(0)
        t.note_release(np.zeros(2))
        assert t.races() == []

    def test_race_records_lazy_release_site(self):
        t = HBTracker(2)
        t.register_thread(0)
        buf = np.zeros(2)
        t.open_window(0, buf, dest=1, site="open-here")
        called = []
        t.note_release(buf, site_fn=lambda: called.append(1) or "rel-here")
        (race,) = t.races()
        assert race["release_site"] == "rel-here" and called == [1]

    def test_module_hook_uses_active_tracker(self):
        t = HBTracker(2)
        buf = np.zeros(2)
        activate_tracker(t)
        try:
            assert active_tracker() is t
            t.register_thread(0)
            t.open_window(0, buf, dest=1, site="s")
            note_buffer_release(buf)
        finally:
            deactivate_tracker(t)
        assert len(t.races()) == 1
        assert active_tracker() is not t
        # with no tracker armed the hook is a cheap no-op
        note_buffer_release(buf)


# --------------------------------------------------------------------------
# thread backend: induced hangs raise DeadlockError with the cycle
# --------------------------------------------------------------------------


def _cross_recv(comm):
    comm.Recv(source=1 - comm.rank, tag=42)


def _mismatched_collective(comm):
    if comm.rank == 0:
        comm.barrier()
    else:
        comm.Recv(source=0, tag=5)


def _ok_ring(comm):
    comm.Send(np.array([float(comm.rank)]), dest=(comm.rank + 1) % comm.size)
    got = comm.Recv(source=(comm.rank - 1) % comm.size)
    return float(got[0])


class TestThreadDeadlockDiagnosis:
    def test_cross_recv_names_the_cycle(self):
        with pytest.raises(DeadlockError) as ei:
            SimMPI.run(2, _cross_recv, timeout=0.4)
        err = ei.value
        assert err.cycle is not None
        assert err.cycle[0] == err.cycle[-1] and set(err.cycle) == {0, 1}
        text = str(err)
        assert "wait-for graph at timeout" in text
        assert "Recv(source=0, tag=42)" in text or \
            "Recv(source=1, tag=42)" in text
        assert "blocked cycle" in text
        # both ranks' ops land in the attached snapshot
        assert set(err.pending) == {0, 1}

    def test_deadlock_error_is_a_deadlock_timeout(self):
        with pytest.raises(DeadlockTimeout):
            SimMPI.run(2, _cross_recv, timeout=0.4)

    def test_collective_hang_names_the_collective(self):
        with pytest.raises(DeadlockError) as ei:
            SimMPI.run(2, _mismatched_collective, timeout=0.4)
        assert "collective" in str(ei.value)

    def test_clean_world_raises_nothing(self):
        assert SimMPI.run(2, _ok_ring) == [1.0, 0.0]

    def test_sanitized_clean_world(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert SimMPI.run(2, _ok_ring) == [1.0, 0.0]


# --------------------------------------------------------------------------
# process backend: shared-memory op register
# --------------------------------------------------------------------------


class TestOpRegister:
    def test_publish_read_roundtrip(self):
        reg = _OpRegister(3)
        try:
            reg.publish(1, PendingOp(rank=1, kind="Recv", source=0, tag=3))
            peer = _OpRegister(3, name=reg.name)
            try:
                raw = peer.read_all()
            finally:
                peer.close()
            assert raw[0] is None and raw[2] is None
            assert raw[1]["kind"] == "Recv" and raw[1]["source"] == 0
        finally:
            reg.close()
            reg.unlink()

    def test_publish_none_clears_slot(self):
        reg = _OpRegister(2)
        try:
            reg.publish(0, PendingOp(rank=0, kind="Recv", source=1))
            reg.publish(0, None)
            assert reg.read_all()[0] is None
        finally:
            reg.close()
            reg.unlink()

    def test_oversized_op_degrades_not_drops(self):
        reg = _OpRegister(1)
        try:
            big = PendingOp(rank=0, kind="collective", comm="c" * 200,
                            members=tuple(range(64)), detail="d" * 400)
            reg.publish(0, big)
            d = reg.read_all()[0]
            assert d is not None and d["kind"] == "collective"
            assert len(d["detail"]) <= 64
        finally:
            reg.close()
            reg.unlink()


class TestProcessDeadlockDiagnosis:
    def test_cross_recv_names_the_cycle(self):
        with pytest.raises(DeadlockError) as ei:
            ProcMPI.run(2, _cross_recv, timeout=3.0)
        err = ei.value
        assert err.cycle is not None
        assert err.cycle[0] == err.cycle[-1] and set(err.cycle) == {0, 1}
        assert "wait-for graph at timeout" in str(err)


# --------------------------------------------------------------------------
# socket backend: STUCK notices merged by the coordinator
# --------------------------------------------------------------------------


def _quiet_worker(addr):
    with contextlib.suppress(BaseException):
        worker_join(addr, timeout=60.0)


def _loopback_world(nprocs, fn, *, timeout):
    """Coordinator thread + worker threads on a loopback socket."""
    addr_box, announced = {}, threading.Event()

    def announce(addr):
        addr_box["addr"] = addr
        announced.set()

    launcher = SockMPI(spawn=False, announce=announce)
    out = {}

    def coordinate():
        try:
            out["results"] = launcher.run(nprocs, fn, timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            out["error"] = exc

    coord = threading.Thread(target=coordinate, daemon=True)
    coord.start()
    assert announced.wait(30.0), "coordinator never announced its address"
    workers = [
        threading.Thread(target=_quiet_worker, args=(addr_box["addr"],),
                         daemon=True)
        for _ in range(nprocs)
    ]
    for w in workers:
        w.start()
    coord.join(timeout=120.0)
    assert not coord.is_alive(), "coordinator did not finish"
    if "error" in out:
        raise out["error"]
    return out["results"]


class TestSocketDeadlockDiagnosis:
    def test_cross_recv_names_the_cycle(self):
        with pytest.raises(DeadlockError) as ei:
            _loopback_world(2, _cross_recv, timeout=2.0)
        err = ei.value
        assert err.cycle is not None
        assert err.cycle[0] == err.cycle[-1] and set(err.cycle) == {0, 1}
        text = str(err)
        assert "wait-for graph at timeout" in text
        assert "blocked cycle" in text

    def test_clean_loopback_world(self):
        assert _loopback_world(2, _ok_ring, timeout=30.0) == [1.0, 0.0]


# --------------------------------------------------------------------------
# mpi4py shim: pending-op hook exists even without mpi4py installed
# --------------------------------------------------------------------------


def test_mpimpi_pending_op_hook():
    assert current_pending_op() is None
