import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mhd.state import FIELD_NAMES, MHDState


def random_state(shape=(4, 5, 6), seed=0):
    rng = np.random.default_rng(seed)
    s = MHDState(*(rng.normal(size=shape) for _ in FIELD_NAMES))
    s.rho = np.abs(s.rho) + 0.5
    s.p = np.abs(s.p) + 0.5
    return s


class TestConstruction:
    def test_zeros(self):
        s = MHDState.zeros((3, 4, 5))
        assert s.shape == (3, 4, 5)
        assert all(np.all(a == 0) for a in s.arrays())

    def test_shape_mismatch_rejected(self):
        arrays = [np.zeros((2, 2, 2))] * 7 + [np.zeros((3, 2, 2))]
        with pytest.raises(ValueError, match="aph"):
            MHDState(*arrays)

    def test_copy_is_deep(self):
        s = random_state()
        c = s.copy()
        c.rho += 1.0
        assert not np.allclose(c.rho, s.rho)

    def test_field_order(self):
        s = MHDState.zeros((2, 2, 2))
        assert [n for n, _ in s.named_arrays()] == list(FIELD_NAMES)


class TestViews:
    def test_f_and_a_tuples_are_views(self):
        s = random_state()
        s.f[0][0, 0, 0] = 42.0
        assert s.fr[0, 0, 0] == 42.0
        s.a[2][0, 0, 0] = -42.0
        assert s.aph[0, 0, 0] == -42.0

    def test_velocity_definition(self):
        s = random_state()
        v = s.velocity()
        np.testing.assert_allclose(v[1], s.fth / s.rho)

    def test_temperature_definition(self):
        s = random_state()
        np.testing.assert_allclose(s.temperature(), s.p / s.rho)


class TestAlgebra:
    @given(st.floats(-3, 3))
    def test_axpy(self, a):
        s = random_state(seed=1)
        k = random_state(seed=2)
        out = s.axpy(a, k)
        np.testing.assert_allclose(out.p, s.p + a * k.p, atol=1e-12)
        # original untouched
        assert out is not s

    @given(st.floats(-3, 3))
    def test_iadd_scaled_matches_axpy(self, a):
        s1 = random_state(seed=3)
        s2 = s1.copy()
        k = random_state(seed=4)
        out = s1.axpy(a, k)
        s2.iadd_scaled(a, k)
        for x, y in zip(out.arrays(), s2.arrays()):
            np.testing.assert_allclose(x, y, atol=1e-12)

    def test_scale(self):
        s = random_state(seed=5)
        p0 = s.p.copy()
        s.scale(2.0)
        np.testing.assert_allclose(s.p, 2.0 * p0)


class TestSanity:
    def test_physical_state(self):
        assert random_state().is_physical()

    def test_negative_density_flagged(self):
        s = random_state()
        s.rho[0, 0, 0] = -1.0
        assert not s.is_physical()

    def test_nan_flagged(self):
        s = random_state()
        s.aph[1, 1, 1] = np.nan
        assert not s.is_physical()

    def test_max_abs_keys(self):
        s = random_state()
        m = s.max_abs()
        assert set(m) == set(FIELD_NAMES)
        assert m["rho"] == pytest.approx(np.abs(s.rho).max())
