import numpy as np
import pytest

from repro.core import RunConfig, YinYangDynamo
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.grids.component import Panel
from repro.mhd.parameters import MHDParameters
from repro.mhd.state import FIELD_NAMES, MHDState


@pytest.fixture()
def pair():
    rng = np.random.default_rng(0)
    out = {}
    for panel in (Panel.YIN, Panel.YANG):
        s = MHDState(*(rng.normal(size=(4, 5, 6)) for _ in range(8)))
        out[panel] = s
    return out


class TestRoundTrip:
    def test_pair_round_trip(self, pair, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, pair, time=1.25, step=42)
        states, t, step = load_checkpoint(path)
        assert t == 1.25 and step == 42
        assert set(states) == {Panel.YIN, Panel.YANG}
        for panel in pair:
            for a, b in zip(states[panel].arrays(), pair[panel].arrays()):
                np.testing.assert_array_equal(a, b)

    def test_single_state_round_trip(self, pair, tmp_path):
        """A lat-lon single state comes back as a bare MHDState, not
        disguised as a Yin panel (the layout is recorded explicitly)."""
        path = tmp_path / "single.npz"
        save_checkpoint(path, pair[Panel.YIN])
        states, t, step = load_checkpoint(path)
        assert isinstance(states, MHDState)
        assert (t, step) == (0.0, 0)
        for a, b in zip(states.arrays(), pair[Panel.YIN].arrays()):
            np.testing.assert_array_equal(a, b)

    def test_single_state_never_a_panel_dict(self, pair, tmp_path):
        """Restore cannot mis-reconstruct a single state as half a
        panel pair."""
        path = save_checkpoint(tmp_path / "single", pair[Panel.YIN])
        states, _, _ = load_checkpoint(path)
        assert not isinstance(states, dict)

    def test_suffix_added_when_missing(self, pair, tmp_path):
        path = tmp_path / "noext"
        save_checkpoint(path, pair)
        states, _, _ = load_checkpoint(tmp_path / "noext")
        assert Panel.YANG in states

    def test_legacy_v1_single_loads_as_yin_dict(self, pair, tmp_path):
        """Version-1 archives (single state filed under Panel.YIN) keep
        their historical load behaviour."""
        state = pair[Panel.YIN]
        payload = {
            "_version": np.array(1),
            "_time": np.array(0.5),
            "_step": np.array(3),
            "_panels": np.array(["yin"], dtype="U8"),
        }
        for name, arr in state.named_arrays():
            payload[f"yin:{name}"] = arr
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **payload)
        states, t, step = load_checkpoint(path)
        assert list(states) == [Panel.YIN]
        assert (t, step) == (0.5, 3)
        for n in FIELD_NAMES:
            np.testing.assert_array_equal(
                getattr(states[Panel.YIN], n), getattr(state, n)
            )


class TestResume:
    def test_run_resume_equivalence(self, tmp_path):
        """Checkpointing mid-run and resuming reproduces the direct run
        exactly (fixed dt)."""
        params = MHDParameters.laptop_demo()
        cfg = RunConfig(nr=7, nth=12, nph=36, params=params, dt=1e-3)
        direct = YinYangDynamo(cfg)
        direct.run(6, record_every=0)

        staged = YinYangDynamo(cfg)
        staged.run(3, record_every=0)
        path = staged.save_checkpoint(tmp_path / "mid")
        resumed = YinYangDynamo(cfg)
        resumed.restore_checkpoint(path)
        assert resumed.step_count == 3
        resumed.run(3, record_every=0)

        for panel in (Panel.YIN, Panel.YANG):
            for a, b in zip(resumed.state[panel].arrays(), direct.state[panel].arrays()):
                np.testing.assert_array_equal(a, b)

    def test_restore_rejects_single_state(self, pair, tmp_path):
        params = MHDParameters.laptop_demo()
        path = save_checkpoint(tmp_path / "single", pair[Panel.YIN])
        dyn = YinYangDynamo(RunConfig(nr=7, nth=12, nph=36, params=params))
        with pytest.raises(ValueError, match="panel-pair"):
            dyn.restore_checkpoint(path)

    def test_version_guard(self, pair, tmp_path):
        path = save_checkpoint(tmp_path / "v", pair)
        # corrupt the version
        data = dict(np.load(path))
        data["_version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)
