import numpy as np
import pytest

from repro.grids.latlon import LatLonGrid


class TestBuild:
    def test_half_cell_pole_offset(self):
        g = LatLonGrid.build(7, 12, 24)
        dth = np.pi / 12
        assert g.theta[1] == pytest.approx(dth / 2)  # first interior row
        assert g.theta[-2] == pytest.approx(np.pi - dth / 2)
        # halo rows overshoot the poles
        assert g.theta[0] < 0.0 and g.theta[-1] > np.pi

    def test_requires_even_nph(self):
        with pytest.raises(ValueError, match="even"):
            LatLonGrid.build(7, 12, 25)

    def test_interior_counts(self):
        g = LatLonGrid.build(7, 12, 24)
        assert g.nth_interior == 12
        assert g.nph_interior == 24
        assert g.shape == (7, 14, 26)

    def test_longitude_covers_circle(self):
        g = LatLonGrid.build(7, 12, 24)
        interior_phi = g.phi[1:-1]
        assert interior_phi[0] == pytest.approx(-np.pi)
        assert interior_phi[-1] == pytest.approx(np.pi - 2 * np.pi / 24)


class TestHaloFilling:
    def test_periodic_longitude_scalar(self):
        g = LatLonGrid.build(5, 8, 16)
        f = np.arange(np.prod(g.shape), dtype=float).reshape(g.shape)
        g.fill_halos_scalar(f)
        np.testing.assert_array_equal(f[:, :, 0], f[:, :, -2])
        np.testing.assert_array_equal(f[:, :, -1], f[:, :, 1])

    def test_pole_copy_smooth_function(self):
        """Across-pole halo of a smooth global scalar equals the function
        evaluated at the reflected point (-theta -> theta, phi -> phi+pi)."""
        g = LatLonGrid.build(5, 16, 32)
        th, ph = np.meshgrid(g.theta, g.phi, indexing="ij")
        # a smooth function of position only (well-defined at the pole)
        x = np.sin(th) * np.cos(ph)
        z = np.cos(th)
        f = np.broadcast_to((z + 0.3 * x)[None], g.shape).copy()
        expected_halo = f[:, 0, 1:-1].copy()  # analytic value at theta = -dth/2
        g.fill_halos_scalar(f)
        np.testing.assert_allclose(f[:, 0, 1:-1], expected_halo, atol=1e-12)

    def test_pole_flip_vector(self):
        """Tangential components change sign across the pole."""
        g = LatLonGrid.build(5, 8, 16)
        shape = g.shape
        vr = np.ones(shape)
        vth = np.full(shape, 2.0)
        vph = np.full(shape, -3.0)
        g.fill_halos_vector(vr, vth, vph)
        assert np.all(vr[:, 0, 1:-1] == 1.0)
        assert np.all(vth[:, 0, 1:-1] == -2.0)
        assert np.all(vph[:, 0, 1:-1] == 3.0)

    def test_pole_shift_is_half_turn(self):
        g = LatLonGrid.build(5, 8, 16)
        shift = g.pole_shift
        n = g.nph_interior
        # applying the shift twice returns the original column order
        twice = shift[shift - 1]
        np.testing.assert_array_equal(twice, np.arange(1, n + 1))

    def test_fill_shape_mismatch(self):
        g = LatLonGrid.build(5, 8, 16)
        with pytest.raises(ValueError, match="shape"):
            g.fill_halos_scalar(np.zeros((2, 2, 2)))


class TestPolePathology:
    def test_clustering_ratio_grows_linearly(self):
        """Equator/pole cell-width ratio ~ 2 nth / pi: the Section II
        problem that motivates the Yin-Yang grid."""
        r1 = LatLonGrid.build(5, 16, 32).pole_clustering_ratio()
        r2 = LatLonGrid.build(5, 32, 64).pole_clustering_ratio()
        assert r2 / r1 == pytest.approx(2.0, rel=0.1)

    def test_min_width_at_pole_row(self):
        g = LatLonGrid.build(5, 16, 32)
        assert g.min_cell_width() == pytest.approx(
            g.ro * np.sin(g.theta[1]) * g.dphi
        )

    def test_interior_mask(self):
        g = LatLonGrid.build(5, 8, 16)
        m = g.interior_mask()
        assert m.sum() == 8 * 16
        assert not m[0].any() and not m[-1].any()
        assert not m[:, 0].any() and not m[:, -1].any()
